"""Dependence graph construction for whole programs.

Ties the pipeline together: normalize, bound, pair up references, run
delinearization (or any configured test) on each pair, classify the results
as flow/anti/output/input dependences with direction and distance-direction
vectors, and collect everything into a :class:`DependenceGraph`.

Classification conventions (paper Section 2, classic orientation):

* each reference pair is analyzed once with the textually-first reference as
  side 0 ("alpha");
* a feasible atomic direction whose first non-'=' element is '<' means the
  side-0 instance executes first: the dependence runs side0 -> side1;
* '>' means the side-1 instance executes first: the edge is reported
  side1 -> side0 with the direction vector reversed (so reported vectors are
  always lexicographically non-negative, and reported distances are the
  sink-minus-source iteration differences);
* the all-'=' vector is a dependence only from the textually earlier access
  to the later one inside a single iteration (reads of a statement execute
  before its write);
* write/write = output, write/read = flow, read/write = anti,
  read/read = input (off by default).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Iterable

from ..analysis.interproc import ensure_calls_resolved
from ..analysis.normalize import normalize_program, rectangular_bounds
from ..analysis.refpairs import build_pair_problem
from ..core.cache import ProblemCache, cached_delinearize, default_cache
from ..core.chaos import active_state, chaos_point
from ..core.delinearize import DelinearizationResult
from ..core.resilience import DEFAULT_PAIR_BUDGET, Barrier, Budget
from ..deptests.problem import Verdict
from ..dirvec.vectors import (
    D_EQ,
    DirVec,
    DistanceElem,
    DistanceVec,
    summarize,
)
from ..ir import Program, RefContext, collect_refs, mutually_exclusive
from ..lint.audit import audit_result
from ..lint.diagnostics import Diagnostic, sort_diagnostics
from ..lint.ranges import derive_assumptions, nonempty_loop_assumptions
from ..symbolic import Assumptions, Poly


@dataclass(frozen=True)
class Dependence:
    """One dependence edge of the graph."""

    source: RefContext
    sink: RefContext
    kind: str  # "flow" | "anti" | "output" | "input"
    direction: DirVec
    distance: DistanceVec | None = None
    assumed: bool = False  # True when analysis gave up (conservative edge)

    @property
    def guarded(self) -> bool:
        """True when either endpoint executes only on specific IF branches.

        Derived from the endpoints' guard chains (program structure), not
        stored on the edge: :class:`EdgeSpec` stays unchanged and parallel
        builds remain byte-identical to serial ones.
        """
        return self.source.guarded or self.sink.guarded

    def pair_label(self) -> str:
        return (
            f"{self.source.stmt.label}:{self.source.ref.array} -> "
            f"{self.sink.stmt.label}:{self.sink.ref.array}"
        )

    def __str__(self) -> str:
        distance = f" distance {self.distance}" if self.distance else ""
        flag = " (assumed)" if self.assumed else ""
        guard = " (guarded)" if self.guarded else ""
        return (
            f"{self.pair_label()} {self.kind} {self.direction}"
            f"{distance}{flag}{guard}"
        )


@dataclass
class GraphPerf:
    """Observability counters for one graph build.

    Everything here is *reporting only*: the graph itself is byte-identical
    for any ``jobs`` value and any cache state, while these counters describe
    how the work was done (and so legitimately vary between configurations —
    they are deliberately excluded from the graph's table/DOT/JSON output).
    """

    pairs: int = 0
    jobs: int = 1
    batches: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    degraded_pairs: int = 0
    wall_seconds: float = 0.0
    #: Per-cascade outcome counts: delinearization verdict -> pair count
    #: (pairs whose problem could not even be built are counted under
    #: ``"unbuildable"``; degraded pairs under ``"degraded"``).
    verdicts: dict[str, int] = field(default_factory=dict)

    def count(self, verdict: str) -> None:
        self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1

    def format(self) -> str:
        cascade = ", ".join(
            f"{name}={count}" for name, count in sorted(self.verdicts.items())
        )
        return (
            f"pairs={self.pairs} jobs={self.jobs} batches={self.batches} "
            f"cache hit/miss={self.cache_hits}/{self.cache_misses} "
            f"degraded={self.degraded_pairs} "
            f"wall={self.wall_seconds:.3f}s [{cascade}]"
        )


@dataclass
class DependenceGraph:
    """All dependences of a program, plus the analyzed program itself."""

    program: Program
    edges: list[Dependence] = field(default_factory=list)
    #: Soundness-auditor findings (``DS`` codes); populated when the graph
    #: was built with ``audit=True`` and empty on a clean audit.
    audit_diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Resilience findings (``RS`` codes): dependence pairs that degraded to
    #: the conservative assumed answer on budget exhaustion (RS002) or an
    #: internal dependence-test error (RS001).  Empty on a clean build.
    degradations: list[Diagnostic] = field(default_factory=list)
    #: Interprocedural findings (``AL``/``RS`` codes) produced while
    #: resolving CALL sites into caller-scope references.  Empty when the
    #: program has no CALLs or every call translated exactly and alias-free.
    alias_diagnostics: list[Diagnostic] = field(default_factory=list)
    #: How the build went (pair counts, cache hits, wall time); reporting
    #: only — never part of rendered output compared across configurations.
    perf: GraphPerf | None = None

    def between(self, source_label: str, sink_label: str) -> list[Dependence]:
        return [
            e
            for e in self.edges
            if e.source.stmt.label == source_label
            and e.sink.stmt.label == sink_label
        ]

    def carried_by_level(self, level: int) -> list[Dependence]:
        """Edges whose outermost non-'=' direction position is ``level``."""
        out = []
        for edge in self.edges:
            positions = [i for i, e in enumerate(edge.direction, 1) if e != D_EQ]
            if positions and positions[0] == level:
                out.append(edge)
        return out

    def loop_independent(self) -> list[Dependence]:
        return [e for e in self.edges if e.direction.is_all_equal()]

    def format_table(self) -> str:
        lines = ["Pair of references | kind | direction | distance-direction"]
        for edge in self.edges:
            distance = str(edge.distance) if edge.distance else "-"
            kind = f"{edge.kind} (guarded)" if edge.guarded else edge.kind
            lines.append(
                f"{edge.pair_label()} | {kind} | {edge.direction} | {distance}"
            )
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Render the graph in Graphviz DOT format (one node per statement).

        Edge styling follows convention: solid = flow, dashed = anti,
        bold = output, dotted = input/assumed.
        """
        styles = {
            "flow": "solid",
            "anti": "dashed",
            "output": "bold",
            "input": "dotted",
            "scalar": "dotted",
        }
        lines = ["digraph dependences {", "  rankdir=TB;"]
        statements = {
            stmt.label: stmt for stmt, _ in self.program.walk_statements()
        }
        for label, stmt in statements.items():
            text = str(stmt).replace('"', "'")
            lines.append(f'  {label} [shape=box, label="{label}: {text}"];')
        for edge in self.edges:
            style = styles.get(edge.kind, "solid")
            annotation = f"{edge.kind} {edge.direction}"
            if edge.distance:
                annotation += f" {edge.distance}"
            if edge.assumed:
                annotation += " (assumed)"
            if edge.guarded:
                annotation += " (guarded)"
            lines.append(
                f"  {edge.source.stmt.label} -> {edge.sink.stmt.label} "
                f'[style={style}, label="{annotation}"];'
            )
        lines.append("}")
        return "\n".join(lines)


@dataclass(frozen=True)
class EdgeSpec:
    """A dependence edge described without its :class:`RefContext` endpoints.

    Pair evaluation may happen in a pool worker, whose unpickled program
    holds *copies* of the parent's IR nodes; edges therefore travel back as
    specs and the parent rebuilds :class:`Dependence` objects against its
    own reference contexts, keeping the merged graph byte-identical to a
    serial build.  ``source_first`` orients the edge within its pair.
    """

    source_first: bool
    kind: str
    direction: DirVec
    distance: DistanceVec | None = None
    assumed: bool = False

    def build(self, first: RefContext, second: RefContext) -> Dependence:
        source, sink = (
            (first, second) if self.source_first else (second, first)
        )
        return Dependence(
            source, sink, self.kind, self.direction, self.distance, self.assumed
        )


@dataclass
class PairOutcome:
    """Everything one pair evaluation produced, in picklable form."""

    index: int
    edges: list[EdgeSpec] = field(default_factory=list)
    degradations: list[Diagnostic] = field(default_factory=list)
    audit: list[Diagnostic] = field(default_factory=list)
    cached: bool = False
    #: Delinearization verdict value, ``"unbuildable"`` when no problem
    #: could be formed, or ``"degraded"`` after a barrier fallback.
    verdict: str = "unbuildable"
    #: True when this outcome may be replayed for an identical pair
    #: fingerprint (see :func:`pair_fingerprint`): the evaluation finished
    #: clean — no degradations and no budget/deadline exhaustion.  Degraded
    #: or deadline-cut outcomes must never be replayed: a later run with
    #: more time could do better, and replaying them would freeze a
    #: transient fault into the incremental state.
    reusable: bool = False


def reference_pairs(
    program: Program, include_input: bool = False
) -> list[tuple[RefContext, RefContext]]:
    """The deterministic pair worklist for a (normalized) program.

    Shared by the serial loop, the pool workers (which re-derive the same
    list from the unpickled program) and :func:`conservative_graph`, so a
    pair's index means the same thing everywhere.
    """
    by_array: dict[str, list[RefContext]] = {}
    for ref in collect_refs(program):
        by_array.setdefault(ref.ref.array, []).append(ref)
    pairs: list[tuple[RefContext, RefContext]] = []
    for array_refs in by_array.values():
        for i, first in enumerate(array_refs):
            for second in array_refs[i:]:
                if not (first.is_write or second.is_write):
                    if not include_input:
                        continue
                if first is second and not first.is_write:
                    continue  # self input dependences are meaningless
                pairs.append((first, second))
    return pairs


def assumptions_fingerprint(assumptions: Assumptions) -> str:
    """Stable digest of an assumption set, for pair fingerprints."""
    digest = hashlib.sha256()
    for symbol, lower, upper in assumptions.items():
        digest.update(f"{symbol}:{lower}:{upper};".encode())
    return digest.hexdigest()


def bounds_fingerprint(bounds: dict[str, Poly]) -> str:
    """Stable digest of a rectangular-bounds map, for pair fingerprints."""
    digest = hashlib.sha256()
    for var in sorted(bounds):
        digest.update(f"{var}<={bounds[var]};".encode())
    return digest.hexdigest()


def _identity_indices(chains: list[list]) -> list[list[int]]:
    """Map object *instances* across chains to small stable indices.

    Guard mutual-exclusion and common-loop counting compare IR nodes by
    identity (``a is b``), so a fingerprint built from text alone would
    conflate two same-text IF statements (whose arms CAN co-execute) with
    the two arms of one IF (which cannot).  Numbering first occurrences
    across both chains preserves exactly the sharing structure.
    """
    ids: dict[int, int] = {}
    out: list[list[int]] = []
    for chain in chains:
        row = []
        for obj in chain:
            key = id(obj)
            if key not in ids:
                ids[key] = len(ids)
            row.append(ids[key])
        out.append(row)
    return out


def pair_fingerprint(
    first: RefContext,
    second: RefContext,
    order: dict[str, int],
    *,
    bounds_fp: str,
    assumptions_fp: str,
    options: str,
) -> str:
    """Content digest of everything one pair evaluation can observe.

    Two pairs with equal fingerprints produce byte-identical
    :class:`PairOutcome` contents (edges, audit findings, verdict), which is
    what lets a resident server replay outcomes for untouched routines after
    a ``didChange`` instead of re-solving them — reuse is purely
    fingerprint-keyed, so stale state is impossible by construction (an
    edited pair simply stops matching).  The digest covers: both statements'
    label/text/span, the reference texts and access kinds, the full
    enclosing-loop headers *with instance-sharing structure*, the guard
    chains with IF-instance identity and branch, relative statement order,
    the self-pair flag, and program-global digests of the derived bounds and
    assumptions plus an ``options`` token for the analysis knobs.
    """
    digest = hashlib.sha256()
    digest.update(
        f"v1|{options}|{assumptions_fp}|{bounds_fp}|".encode()
    )
    digest.update(b"self|" if first is second else b"pair|")
    position_a = order.get(first.stmt.label, 0)
    position_b = order.get(second.stmt.label, 0)
    relative = 0 if position_a == position_b else (
        -1 if position_a < position_b else 1
    )
    digest.update(f"order={relative}|".encode())
    loop_rows = _identity_indices([list(first.loops), list(second.loops)])
    guard_rows = _identity_indices(
        [[g.node for g in first.guards], [g.node for g in second.guards]]
    )
    for ref, loop_row, guard_row in (
        (first, loop_rows[0], guard_rows[0]),
        (second, loop_rows[1], guard_rows[1]),
    ):
        digest.update(
            f"ref={ref.stmt.label}@{ref.stmt.span}:{ref.stmt}"
            f":{ref.ref}:{int(ref.is_write)}|".encode()
        )
        for loop, ident in zip(ref.loops, loop_row):
            digest.update(
                f"loop#{ident}={loop}+{loop.step}@{loop.span}|".encode()
            )
        for guard, ident in zip(ref.guards, guard_row):
            digest.update(f"guard#{ident}={guard}|".encode())
    return digest.hexdigest()


def analysis_options_token(
    *,
    include_input: bool,
    audit: bool,
    derive_bounds: bool,
    pair_budget: int | None,
    strict: bool,
) -> str:
    """The analysis-knob component of a pair fingerprint."""
    return (
        f"input={int(include_input)},audit={int(audit)},"
        f"derive={int(derive_bounds)},budget={pair_budget},"
        f"strict={int(strict)}"
    )


def analyze_dependences(
    program: Program,
    assumptions: Assumptions | None = None,
    include_input: bool = False,
    normalized: bool = False,
    audit: bool = False,
    derive_bounds: bool = True,
    strict: bool = False,
    pair_budget: int | None = DEFAULT_PAIR_BUDGET,
    jobs: int = 1,
    use_cache: bool = True,
    cache: ProblemCache | None = None,
    cache_dir: str | None = None,
    outcome_cache=None,
    deadline: float | None = None,
) -> DependenceGraph:
    """Build the dependence graph of a program using delinearization.

    With ``audit=True`` every delinearization outcome is independently
    re-verified by the soundness auditor (:mod:`repro.lint.audit`); findings
    land in :attr:`DependenceGraph.audit_diagnostics`.

    ``derive_bounds`` (on by default) enriches the user assumptions with
    facts the program itself proves: symbol bounds implied by declared array
    extents and interval-analysis value ranges program-wide, plus — per
    dependence pair — non-emptiness of every loop enclosing either
    reference.  This is the paper's Section 6 inference (``N >= 1`` from
    ``REAL A(0:N*N*N-1)``) made automatic.

    Each dependence pair runs inside an exception barrier with a fresh work
    budget of ``pair_budget`` steps (None disables metering).  A pair whose
    analysis exhausts its budget or raises degrades to the sound
    conservative answer — dependence assumed with the all-``*`` direction —
    recorded on :attr:`DependenceGraph.degradations` as RS002/RS001.  With
    ``strict=True`` internal errors re-raise instead (budget exhaustion
    still degrades: giving up is a designed outcome).

    Performance knobs (none of which may change the resulting graph —
    ``tests/depgraph/test_parallel.py`` holds all of them to byte-identity):

    * ``jobs`` — evaluate pairs on a :class:`ProcessPoolExecutor` with that
      many workers; pairs are sharded into deterministic batches and merged
      in pair order.  A crashed worker degrades only its batch to assumed
      RS001 edges (re-raised under ``strict``).
    * ``use_cache`` / ``cache`` — memoize verdicts on the canonical-problem
      cache (:mod:`repro.core.cache`); the process-wide default cache unless
      an explicit :class:`ProblemCache` is given.  ``use_cache=False``
      solves every pair from scratch.
    * ``cache_dir`` — warm the cache from (and persist it to) an on-disk
      pickle keyed by the deptest schema hash.

    Server extensions (both force the serial path):

    * ``outcome_cache`` — an object with ``lookup(fingerprint, index)`` and
      ``store(fingerprint, outcome)`` (see
      :class:`repro.server.incremental.OutcomeCache`): whole
      :class:`PairOutcome` objects are replayed for pairs whose
      :func:`pair_fingerprint` is unchanged since a previous build, which is
      what makes ``didChange`` re-analysis incremental.  Bypassed entirely
      while chaos injection is active (replay would mask injected faults).
    * ``deadline`` — an absolute ``time.monotonic()`` instant merged into
      every pair budget; pairs that cross it degrade with RS006 instead of
      running long.
    """
    started = time.perf_counter()
    assumptions = assumptions or Assumptions.empty()
    analyzed = program if normalized else normalize_program(program)
    alias_diagnostics = ensure_calls_resolved(analyzed)
    if derive_bounds:
        assumptions = derive_assumptions(analyzed, assumptions)
    bounds = rectangular_bounds(analyzed)
    graph = DependenceGraph(analyzed)

    order = {
        stmt.label: index
        for index, (stmt, _) in enumerate(analyzed.walk_statements())
    }
    pairs = reference_pairs(analyzed, include_input)
    problem_cache = cache
    if problem_cache is None and use_cache:
        problem_cache = default_cache()
    if problem_cache is not None and cache_dir is not None:
        problem_cache.load_disk(cache_dir)

    serial = jobs <= 1 or len(pairs) <= 1
    if outcome_cache is not None or deadline is not None:
        # Outcome replay and deadline enforcement are request-scoped server
        # features; the daemon's workers analyze serially (jobs=1), so the
        # parallel sharding never needs to thread them through.
        serial = True
        jobs = 1
    perf = GraphPerf(pairs=len(pairs), jobs=max(1, jobs))
    if not serial:
        from .parallel import evaluate_pairs_parallel

        outcomes, perf.batches = evaluate_pairs_parallel(
            analyzed,
            pairs,
            bounds,
            assumptions,
            order,
            jobs=jobs,
            include_input=include_input,
            audit=audit,
            derive_bounds=derive_bounds,
            pair_budget=pair_budget,
            strict=strict,
            cache=problem_cache,
            cache_dir=cache_dir,
        )
    else:
        fingerprints: list[str] | None = None
        if outcome_cache is not None and active_state() is None:
            assumptions_fp = assumptions_fingerprint(assumptions)
            bounds_fp = bounds_fingerprint(bounds)
            options = analysis_options_token(
                include_input=include_input,
                audit=audit,
                derive_bounds=derive_bounds,
                pair_budget=pair_budget,
                strict=strict,
            )
            fingerprints = [
                pair_fingerprint(
                    first,
                    second,
                    order,
                    bounds_fp=bounds_fp,
                    assumptions_fp=assumptions_fp,
                    options=options,
                )
                for first, second in pairs
            ]
        outcomes = []
        for index, (first, second) in enumerate(pairs):
            fingerprint = (
                fingerprints[index] if fingerprints is not None else None
            )
            if fingerprint is not None:
                replayed = outcome_cache.lookup(fingerprint, index)
                if replayed is not None:
                    outcomes.append(replayed)
                    continue
            outcome = evaluate_pair(
                index,
                first,
                second,
                bounds,
                assumptions,
                order,
                audit=audit,
                derive_bounds=derive_bounds,
                pair_budget=pair_budget,
                strict=strict,
                cache=problem_cache,
                deadline=deadline,
            )
            if fingerprint is not None:
                outcome_cache.store(fingerprint, outcome)
            outcomes.append(outcome)
        perf.batches = 1 if pairs else 0

    degradations: list[Diagnostic] = []
    for outcome, (first, second) in zip(outcomes, pairs):
        for spec in outcome.edges:
            graph.edges.append(spec.build(first, second))
        degradations.extend(outcome.degradations)
        graph.audit_diagnostics.extend(outcome.audit)
        perf.count(outcome.verdict)
        if outcome.cached:
            perf.cache_hits += 1
        elif outcome.verdict not in ("degraded", "unbuildable"):
            perf.cache_misses += 1
        if outcome.verdict == "degraded":
            perf.degraded_pairs += 1

    if problem_cache is not None and cache_dir is not None:
        problem_cache.save_disk(cache_dir)
    graph.degradations = sort_diagnostics(degradations)
    graph.alias_diagnostics = alias_diagnostics
    if audit:
        graph.audit_diagnostics = sort_diagnostics(graph.audit_diagnostics)
    perf.wall_seconds = time.perf_counter() - started
    graph.perf = perf
    return graph


def evaluate_pair(
    index: int,
    first: RefContext,
    second: RefContext,
    bounds: dict[str, Poly],
    assumptions: Assumptions,
    order: dict[str, int],
    *,
    audit: bool = False,
    derive_bounds: bool = True,
    pair_budget: int | None = DEFAULT_PAIR_BUDGET,
    strict: bool = False,
    cache: ProblemCache | None = None,
    deadline: float | None = None,
) -> PairOutcome:
    """Evaluate one pair behind its own barrier and fresh budget.

    On failure the outcome's partial edges are rolled back: a partial
    direction set can be *narrower* than the truth, and narrower is unsound.
    The assumed all-``*`` edges that replace them cover every possible
    dependence.

    ``deadline`` is an absolute ``time.monotonic()`` instant shared by every
    pair of one request: a pair that crosses it answers conservatively and
    carries an RS006 diagnostic (the metered tests may also give up silently
    as MAYBE — the RS006 note makes that visible and, via
    :attr:`PairOutcome.reusable`, non-replayable).
    """
    from ..lint import codes

    outcome = PairOutcome(index=index)
    barrier = Barrier(strict=strict)
    label = (
        f"{first.stmt.label}:{first.ref.array} / "
        f"{second.stmt.label}:{second.ref.array}"
    )
    budget = (
        None
        if pair_budget is None and deadline is None
        else Budget(
            steps=pair_budget, label=f"pair {label}", deadline=deadline
        )
    )

    def analyze() -> None:
        chaos_point("depgraph.pair")
        _pair_specs(
            outcome,
            first,
            second,
            bounds,
            assumptions,
            order,
            audit,
            derive_bounds,
            budget,
            cache,
        )

    def degrade() -> None:
        outcome.edges.clear()
        common = sum(
            1 for a, b in zip(first.loops, second.loops) if a is b
        )
        outcome.edges.extend(_assumed_specs(first, second, common))
        outcome.cached = False
        outcome.verdict = "degraded"

    barrier.run(
        "dependence pair",
        analyze,
        degrade,
        code=codes.RS001,
        statement=label,
        span=first.stmt.span,
    )
    if budget is not None and budget.deadline_hit:
        barrier.note(
            codes.RS006,
            "dependence pair",
            f"deadline exceeded analyzing {label}; conservative answer used",
            statement=label,
            span=first.stmt.span,
        )
    outcome.degradations = barrier.degradations
    outcome.reusable = not outcome.degradations and (
        budget is None or not budget.exhausted
    )
    return outcome


def _pair_specs(
    outcome: PairOutcome,
    first: RefContext,
    second: RefContext,
    bounds: dict[str, Poly],
    assumptions: Assumptions,
    order: dict[str, int],
    audit: bool,
    derive_bounds: bool,
    budget: Budget | None,
    cache: ProblemCache | None,
) -> None:
    if derive_bounds:
        # A dependence requires both statement instances to execute, so the
        # loops enclosing either reference are non-empty *for this pair*
        # (the fact would be unsound applied program-wide).
        loop_vars = {loop.var for loop in first.loops} | {
            loop.var for loop in second.loops
        }
        assumptions = nonempty_loop_assumptions(loop_vars, bounds, assumptions)
    pair = build_pair_problem(first, second, bounds, assumptions)
    if pair.problem is None:
        outcome.edges.extend(
            _assumed_specs(first, second, pair.common_levels)
        )
        return
    hits_before = cache.stats.hits if cache is not None else 0
    result = cached_delinearize(
        pair.problem, cache=cache, budget=budget, keep_trace=audit
    )
    outcome.cached = cache is not None and cache.stats.hits > hits_before
    outcome.verdict = result.verdict.value
    if audit:
        outcome.audit.extend(
            audit_result(
                pair.problem,
                result,
                statement=(
                    f"{first.stmt.label}:{first.ref.array} / "
                    f"{second.stmt.label}:{second.ref.array}"
                ),
                span=first.stmt.span,
            )
        )
    if result.verdict is Verdict.INDEPENDENT:
        return
    forward: set[DirVec] = set()
    backward: set[DirVec] = set()
    identity = False
    vectors = result.direction_vectors or {DirVec.star(pair.common_levels)}
    for vector in vectors:
        for atomic in vector.atomic_vectors():
            klass = DirVec._atomic_class(atomic)
            if klass == "positive":
                forward.add(atomic)
            elif klass == "negative":
                backward.add(atomic.reversed_directions())
            else:
                identity = True
    if first is second:
        # A self pair sees every unordered solution twice (once per
        # orientation); the backward set mirrors the forward one.  The
        # all-'=' identity is the same statement instance: not a dependence.
        backward = set()
        identity = False
    if identity and mutually_exclusive(first.guards, second.guards):
        # Opposite arms of one IF: the condition is evaluated once per
        # reaching of the IF, so the two references never co-execute within
        # a single iteration.  Only the same-iteration (all-'=') component
        # is refuted — cross-iteration dependences between the arms remain
        # (the condition may flip between iterations).
        identity = False
    if identity and first.stmt.label != second.stmt.label:
        # Same-statement identity pairs (a statement reading what it writes
        # in the same instance) are guaranteed read-before-write by any
        # execution model, including vector semantics: not recorded.
        if _executes_before(first, second, order):
            forward.add(DirVec([D_EQ] * pair.common_levels))
        else:
            backward.add(DirVec([D_EQ] * pair.common_levels))

    for direction in summarize(forward):
        outcome.edges.append(
            _make_spec(first, second, True, direction, result, negate=False)
        )
    for direction in summarize(backward):
        outcome.edges.append(
            _make_spec(second, first, False, direction, result, negate=True)
        )


def _make_spec(
    source: RefContext,
    sink: RefContext,
    source_first: bool,
    direction: DirVec,
    result: DelinearizationResult,
    negate: bool,
) -> EdgeSpec:
    distance = _distance_for(direction, result, negate)
    return EdgeSpec(
        source_first,
        _kind(source.is_write, sink.is_write),
        direction,
        distance,
    )


def _distance_for(
    direction: DirVec, result: DelinearizationResult, negate: bool
) -> DistanceVec | None:
    if not result.distances:
        return None
    elements = []
    for level in range(1, len(direction) + 1):
        pinned = result.distances.get(level)
        if pinned is not None and pinned.is_constant():
            value = pinned.as_int()
            elements.append(DistanceElem.exact(-value if negate else value))
        else:
            elements.append(DistanceElem.unknown(direction[level - 1]))
    return DistanceVec(elements)


def _kind(source_writes: bool, sink_writes: bool) -> str:
    if source_writes and sink_writes:
        return "output"
    if source_writes:
        return "flow"
    if sink_writes:
        return "anti"
    return "input"


def _executes_before(
    first: RefContext, second: RefContext, order: dict[str, int]
) -> bool:
    if first.stmt.label != second.stmt.label:
        return order[first.stmt.label] < order[second.stmt.label]
    # Within one statement instance the reads happen before the write.
    return not first.is_write


def _assumed_specs(
    first: RefContext, second: RefContext, common_levels: int
) -> list[EdgeSpec]:
    """Conservative edges when no dimension was analyzable."""
    star = DirVec.star(common_levels)
    specs = [
        EdgeSpec(
            True, _kind(first.is_write, second.is_write), star, None, True
        )
    ]
    if first is not second:
        specs.append(
            EdgeSpec(
                False, _kind(second.is_write, first.is_write), star, None, True
            )
        )
    return specs


def control_diagnostics(graph: DependenceGraph) -> list[Diagnostic]:
    """``CD001``: one note per guarded dependence edge of a graph.

    A guarded edge is real only on executions where its endpoints' IF arms
    are taken; schedulers must honor it (soundness), but a human reading the
    table should know the dependence is path-qualified, not unconditional.
    """
    from ..lint import codes

    diagnostics = []
    for edge in graph.edges:
        if not edge.guarded:
            continue
        guards = [str(g) for g in (*edge.source.guards, *edge.sink.guards)]
        diagnostics.append(
            Diagnostic.make(
                codes.CD001,
                f"dependence {edge.pair_label()} ({edge.kind} "
                f"{edge.direction}) holds only under "
                f"{' and '.join(dict.fromkeys(guards))}",
                statement=edge.source.stmt.label,
                span=edge.source.stmt.span,
            )
        )
    return sort_diagnostics(diagnostics)


def dependences_for_arrays(
    graph: DependenceGraph, arrays: Iterable[str]
) -> list[Dependence]:
    wanted = set(arrays)
    return [e for e in graph.edges if e.source.ref.array in wanted]


def conservative_graph(
    program: Program, include_input: bool = False
) -> DependenceGraph:
    """The maximally conservative graph: every pair assumed dependent.

    The whole-analysis fallback for the driver's phase barrier: no
    normalization, no bound derivation, no dependence testing — just
    assumed all-``*`` edges between every pair of references to the same
    array.  By construction it covers any graph the real analysis could
    have produced, so degrading to it is always sound (and forces the
    vectorizer into a fully serial schedule).
    """
    graph = DependenceGraph(program)
    graph.alias_diagnostics = ensure_calls_resolved(program)
    for first, second in reference_pairs(program, include_input):
        common = sum(
            1 for a, b in zip(first.loops, second.loops) if a is b
        )
        for spec in _assumed_specs(first, second, common):
            graph.edges.append(spec.build(first, second))
    return graph
