"""Dependence graph construction for whole programs.

Ties the pipeline together: normalize, bound, pair up references, run
delinearization (or any configured test) on each pair, classify the results
as flow/anti/output/input dependences with direction and distance-direction
vectors, and collect everything into a :class:`DependenceGraph`.

Classification conventions (paper Section 2, classic orientation):

* each reference pair is analyzed once with the textually-first reference as
  side 0 ("alpha");
* a feasible atomic direction whose first non-'=' element is '<' means the
  side-0 instance executes first: the dependence runs side0 -> side1;
* '>' means the side-1 instance executes first: the edge is reported
  side1 -> side0 with the direction vector reversed (so reported vectors are
  always lexicographically non-negative, and reported distances are the
  sink-minus-source iteration differences);
* the all-'=' vector is a dependence only from the textually earlier access
  to the later one inside a single iteration (reads of a statement execute
  before its write);
* write/write = output, write/read = flow, read/write = anti,
  read/read = input (off by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..analysis.normalize import normalize_program, rectangular_bounds
from ..analysis.refpairs import build_pair_problem
from ..core.chaos import chaos_point
from ..core.delinearize import DelinearizationResult, delinearize
from ..core.resilience import DEFAULT_PAIR_BUDGET, Barrier, Budget
from ..deptests.problem import Verdict
from ..dirvec.vectors import (
    D_EQ,
    DirVec,
    DistanceElem,
    DistanceVec,
    summarize,
)
from ..ir import Program, RefContext, collect_refs
from ..lint.audit import audit_result
from ..lint.diagnostics import Diagnostic, sort_diagnostics
from ..lint.ranges import derive_assumptions, nonempty_loop_assumptions
from ..symbolic import Assumptions, Poly


@dataclass(frozen=True)
class Dependence:
    """One dependence edge of the graph."""

    source: RefContext
    sink: RefContext
    kind: str  # "flow" | "anti" | "output" | "input"
    direction: DirVec
    distance: DistanceVec | None = None
    assumed: bool = False  # True when analysis gave up (conservative edge)

    def pair_label(self) -> str:
        return (
            f"{self.source.stmt.label}:{self.source.ref.array} -> "
            f"{self.sink.stmt.label}:{self.sink.ref.array}"
        )

    def __str__(self) -> str:
        distance = f" distance {self.distance}" if self.distance else ""
        flag = " (assumed)" if self.assumed else ""
        return (
            f"{self.pair_label()} {self.kind} {self.direction}{distance}{flag}"
        )


@dataclass
class DependenceGraph:
    """All dependences of a program, plus the analyzed program itself."""

    program: Program
    edges: list[Dependence] = field(default_factory=list)
    #: Soundness-auditor findings (``DS`` codes); populated when the graph
    #: was built with ``audit=True`` and empty on a clean audit.
    audit_diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Resilience findings (``RS`` codes): dependence pairs that degraded to
    #: the conservative assumed answer on budget exhaustion (RS002) or an
    #: internal dependence-test error (RS001).  Empty on a clean build.
    degradations: list[Diagnostic] = field(default_factory=list)

    def between(self, source_label: str, sink_label: str) -> list[Dependence]:
        return [
            e
            for e in self.edges
            if e.source.stmt.label == source_label
            and e.sink.stmt.label == sink_label
        ]

    def carried_by_level(self, level: int) -> list[Dependence]:
        """Edges whose outermost non-'=' direction position is ``level``."""
        out = []
        for edge in self.edges:
            positions = [i for i, e in enumerate(edge.direction, 1) if e != D_EQ]
            if positions and positions[0] == level:
                out.append(edge)
        return out

    def loop_independent(self) -> list[Dependence]:
        return [e for e in self.edges if e.direction.is_all_equal()]

    def format_table(self) -> str:
        lines = ["Pair of references | kind | direction | distance-direction"]
        for edge in self.edges:
            distance = str(edge.distance) if edge.distance else "-"
            lines.append(
                f"{edge.pair_label()} | {edge.kind} | {edge.direction} | {distance}"
            )
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Render the graph in Graphviz DOT format (one node per statement).

        Edge styling follows convention: solid = flow, dashed = anti,
        bold = output, dotted = input/assumed.
        """
        styles = {
            "flow": "solid",
            "anti": "dashed",
            "output": "bold",
            "input": "dotted",
            "scalar": "dotted",
        }
        lines = ["digraph dependences {", "  rankdir=TB;"]
        statements = {
            stmt.label: stmt for stmt, _ in self.program.walk_statements()
        }
        for label, stmt in statements.items():
            text = str(stmt).replace('"', "'")
            lines.append(f'  {label} [shape=box, label="{label}: {text}"];')
        for edge in self.edges:
            style = styles.get(edge.kind, "solid")
            annotation = f"{edge.kind} {edge.direction}"
            if edge.distance:
                annotation += f" {edge.distance}"
            if edge.assumed:
                annotation += " (assumed)"
            lines.append(
                f"  {edge.source.stmt.label} -> {edge.sink.stmt.label} "
                f'[style={style}, label="{annotation}"];'
            )
        lines.append("}")
        return "\n".join(lines)


def analyze_dependences(
    program: Program,
    assumptions: Assumptions | None = None,
    include_input: bool = False,
    normalized: bool = False,
    audit: bool = False,
    derive_bounds: bool = True,
    strict: bool = False,
    pair_budget: int | None = DEFAULT_PAIR_BUDGET,
) -> DependenceGraph:
    """Build the dependence graph of a program using delinearization.

    With ``audit=True`` every delinearization outcome is independently
    re-verified by the soundness auditor (:mod:`repro.lint.audit`); findings
    land in :attr:`DependenceGraph.audit_diagnostics`.

    ``derive_bounds`` (on by default) enriches the user assumptions with
    facts the program itself proves: symbol bounds implied by declared array
    extents and interval-analysis value ranges program-wide, plus — per
    dependence pair — non-emptiness of every loop enclosing either
    reference.  This is the paper's Section 6 inference (``N >= 1`` from
    ``REAL A(0:N*N*N-1)``) made automatic.

    Each dependence pair runs inside an exception barrier with a fresh work
    budget of ``pair_budget`` steps (None disables metering).  A pair whose
    analysis exhausts its budget or raises degrades to the sound
    conservative answer — dependence assumed with the all-``*`` direction —
    recorded on :attr:`DependenceGraph.degradations` as RS002/RS001.  With
    ``strict=True`` internal errors re-raise instead (budget exhaustion
    still degrades: giving up is a designed outcome).
    """
    assumptions = assumptions or Assumptions.empty()
    analyzed = program if normalized else normalize_program(program)
    if derive_bounds:
        assumptions = derive_assumptions(analyzed, assumptions)
    bounds = rectangular_bounds(analyzed)
    graph = DependenceGraph(analyzed)
    barrier = Barrier(strict=strict)

    order = {
        stmt.label: index
        for index, (stmt, _) in enumerate(analyzed.walk_statements())
    }
    by_array: dict[str, list[RefContext]] = {}
    for ref in collect_refs(analyzed):
        by_array.setdefault(ref.ref.array, []).append(ref)

    for array_refs in by_array.values():
        for i, first in enumerate(array_refs):
            for second in array_refs[i:]:
                if not (first.is_write or second.is_write):
                    if not include_input:
                        continue
                if first is second and not first.is_write:
                    continue  # self input dependences are meaningless
                _guarded_pair(
                    graph,
                    barrier,
                    first,
                    second,
                    bounds,
                    assumptions,
                    order,
                    audit,
                    derive_bounds,
                    pair_budget,
                )
    graph.degradations = sort_diagnostics(barrier.degradations)
    if audit:
        graph.audit_diagnostics = sort_diagnostics(graph.audit_diagnostics)
    return graph


def _guarded_pair(
    graph: DependenceGraph,
    barrier: Barrier,
    first: RefContext,
    second: RefContext,
    bounds: dict[str, Poly],
    assumptions: Assumptions,
    order: dict[str, int],
    audit: bool,
    derive_bounds: bool,
    pair_budget: int | None,
) -> None:
    """Run one pair inside the barrier, degrading to assumed star edges.

    Any edges the failed analysis appended before giving up are rolled back
    first: a partial direction set can be *narrower* than the truth, and
    narrower is unsound.  The assumed all-``*`` edges that replace them
    cover every possible dependence.
    """
    from ..lint import codes

    mark = len(graph.edges)
    label = (
        f"{first.stmt.label}:{first.ref.array} / "
        f"{second.stmt.label}:{second.ref.array}"
    )
    budget = (
        None
        if pair_budget is None
        else Budget(steps=pair_budget, label=f"pair {label}")
    )

    def analyze() -> None:
        chaos_point("depgraph.pair")
        _analyze_pair(
            graph,
            first,
            second,
            bounds,
            assumptions,
            order,
            audit,
            derive_bounds,
            budget,
        )

    def degrade() -> None:
        del graph.edges[mark:]
        common = sum(
            1 for a, b in zip(first.loops, second.loops) if a is b
        )
        _add_assumed_edges(graph, first, second, common)

    barrier.run(
        "dependence pair",
        analyze,
        degrade,
        code=codes.RS001,
        statement=label,
        span=first.stmt.span,
    )


def _analyze_pair(
    graph: DependenceGraph,
    first: RefContext,
    second: RefContext,
    bounds: dict[str, Poly],
    assumptions: Assumptions,
    order: dict[str, int],
    audit: bool = False,
    derive_bounds: bool = False,
    budget: Budget | None = None,
) -> None:
    if derive_bounds:
        # A dependence requires both statement instances to execute, so the
        # loops enclosing either reference are non-empty *for this pair*
        # (the fact would be unsound applied program-wide).
        loop_vars = {loop.var for loop in first.loops} | {
            loop.var for loop in second.loops
        }
        assumptions = nonempty_loop_assumptions(loop_vars, bounds, assumptions)
    pair = build_pair_problem(first, second, bounds, assumptions)
    if pair.problem is None:
        _add_assumed_edges(graph, first, second, pair.common_levels)
        return
    result = delinearize(pair.problem, keep_trace=audit, budget=budget)
    if audit:
        graph.audit_diagnostics.extend(
            audit_result(
                pair.problem,
                result,
                statement=(
                    f"{first.stmt.label}:{first.ref.array} / "
                    f"{second.stmt.label}:{second.ref.array}"
                ),
                span=first.stmt.span,
            )
        )
    if result.verdict is Verdict.INDEPENDENT:
        return
    forward: set[DirVec] = set()
    backward: set[DirVec] = set()
    identity = False
    vectors = result.direction_vectors or {DirVec.star(pair.common_levels)}
    for vector in vectors:
        for atomic in vector.atomic_vectors():
            klass = DirVec._atomic_class(atomic)
            if klass == "positive":
                forward.add(atomic)
            elif klass == "negative":
                backward.add(atomic.reversed_directions())
            else:
                identity = True
    if first is second:
        # A self pair sees every unordered solution twice (once per
        # orientation); the backward set mirrors the forward one.  The
        # all-'=' identity is the same statement instance: not a dependence.
        backward = set()
        identity = False
    if identity and first.stmt.label != second.stmt.label:
        # Same-statement identity pairs (a statement reading what it writes
        # in the same instance) are guaranteed read-before-write by any
        # execution model, including vector semantics: not recorded.
        if _executes_before(first, second, order):
            forward.add(DirVec([D_EQ] * pair.common_levels))
        else:
            backward.add(DirVec([D_EQ] * pair.common_levels))

    for direction in summarize(forward):
        graph.edges.append(
            _make_edge(first, second, direction, result, negate=False)
        )
    for direction in summarize(backward):
        graph.edges.append(
            _make_edge(second, first, direction, result, negate=True)
        )


def _make_edge(
    source: RefContext,
    sink: RefContext,
    direction: DirVec,
    result: DelinearizationResult,
    negate: bool,
) -> Dependence:
    distance = _distance_for(direction, result, negate)
    return Dependence(
        source,
        sink,
        _kind(source.is_write, sink.is_write),
        direction,
        distance,
    )


def _distance_for(
    direction: DirVec, result: DelinearizationResult, negate: bool
) -> DistanceVec | None:
    if not result.distances:
        return None
    elements = []
    for level in range(1, len(direction) + 1):
        pinned = result.distances.get(level)
        if pinned is not None and pinned.is_constant():
            value = pinned.as_int()
            elements.append(DistanceElem.exact(-value if negate else value))
        else:
            elements.append(DistanceElem.unknown(direction[level - 1]))
    return DistanceVec(elements)


def _kind(source_writes: bool, sink_writes: bool) -> str:
    if source_writes and sink_writes:
        return "output"
    if source_writes:
        return "flow"
    if sink_writes:
        return "anti"
    return "input"


def _executes_before(
    first: RefContext, second: RefContext, order: dict[str, int]
) -> bool:
    if first.stmt.label != second.stmt.label:
        return order[first.stmt.label] < order[second.stmt.label]
    # Within one statement instance the reads happen before the write.
    return not first.is_write


def _add_assumed_edges(
    graph: DependenceGraph,
    first: RefContext,
    second: RefContext,
    common_levels: int,
) -> None:
    """Conservative edges when no dimension was analyzable."""
    star = DirVec.star(common_levels)
    graph.edges.append(
        Dependence(
            first,
            second,
            _kind(first.is_write, second.is_write),
            star,
            None,
            assumed=True,
        )
    )
    if first is not second:
        graph.edges.append(
            Dependence(
                second,
                first,
                _kind(second.is_write, first.is_write),
                star,
                None,
                assumed=True,
            )
        )


def dependences_for_arrays(
    graph: DependenceGraph, arrays: Iterable[str]
) -> list[Dependence]:
    wanted = set(arrays)
    return [e for e in graph.edges if e.source.ref.array in wanted]


def conservative_graph(
    program: Program, include_input: bool = False
) -> DependenceGraph:
    """The maximally conservative graph: every pair assumed dependent.

    The whole-analysis fallback for the driver's phase barrier: no
    normalization, no bound derivation, no dependence testing — just
    assumed all-``*`` edges between every pair of references to the same
    array.  By construction it covers any graph the real analysis could
    have produced, so degrading to it is always sound (and forces the
    vectorizer into a fully serial schedule).
    """
    graph = DependenceGraph(program)
    by_array: dict[str, list[RefContext]] = {}
    for ref in collect_refs(program):
        by_array.setdefault(ref.ref.array, []).append(ref)
    for array_refs in by_array.values():
        for i, first in enumerate(array_refs):
            for second in array_refs[i:]:
                if not (first.is_write or second.is_write):
                    if not include_input:
                        continue
                if first is second and not first.is_write:
                    continue
                common = sum(
                    1 for a, b in zip(first.loops, second.loops) if a is b
                )
                _add_assumed_edges(graph, first, second, common)
    return graph
