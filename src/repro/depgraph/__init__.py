"""Program-level dependence graphs."""

from .builder import (
    Dependence,
    DependenceGraph,
    analyze_dependences,
    conservative_graph,
    dependences_for_arrays,
)

__all__ = [
    "Dependence",
    "DependenceGraph",
    "analyze_dependences",
    "conservative_graph",
    "dependences_for_arrays",
]
