"""Program-level dependence graphs."""

from .builder import (
    Dependence,
    DependenceGraph,
    EdgeSpec,
    GraphPerf,
    PairOutcome,
    analyze_dependences,
    conservative_graph,
    control_diagnostics,
    dependences_for_arrays,
    evaluate_pair,
    reference_pairs,
)

__all__ = [
    "Dependence",
    "DependenceGraph",
    "EdgeSpec",
    "GraphPerf",
    "PairOutcome",
    "analyze_dependences",
    "conservative_graph",
    "control_diagnostics",
    "dependences_for_arrays",
    "evaluate_pair",
    "reference_pairs",
]
