"""Multiprocess pair evaluation for the dependence graph builder.

The pair worklist is embarrassingly parallel: every pair is evaluated
against the same immutable inputs (normalized program, bounds, assumptions)
behind its own barrier and budget.  This module shards the worklist into
deterministic fixed-size batches, runs them on a
:class:`concurrent.futures.ProcessPoolExecutor`, and merges the outcomes in
pair-index order — so the resulting graph is byte-identical to a serial
build for any worker count.

Design points that keep the parallel path honest:

* workers never ship edges with live IR references; they return
  :class:`~repro.depgraph.builder.EdgeSpec` outcomes and the parent rebuilds
  edges against its own reference contexts;
* workers re-derive the pair list from the unpickled program with the same
  :func:`~repro.depgraph.builder.reference_pairs` the parent used, so pair
  index ``i`` names the same pair in every process;
* a batch whose future fails (a crashed or killed worker, an unpicklable
  error) degrades to assumed all-``*`` RS001 edges for *its* pairs only —
  the merge is otherwise unaffected.  Under ``strict`` the error re-raises;
* chaos state is propagated explicitly (plus the ``REPRO_CHAOS_*``
  environment for spawn-based platforms) and each batch runs under a fresh
  :class:`~repro.core.chaos.ChaosState` scoped to its batch index, so fault
  injection stays deterministic regardless of which worker process picks up
  which batch;
* each worker keeps a process-local :class:`~repro.core.cache.ProblemCache`
  (warmed from ``cache_dir`` when given) and ships newly-computed entries
  back with its outcomes, so the parent's cache — and the persistent file —
  end up as warm as a serial run's.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..core.cache import ProblemCache
from ..core.chaos import ENV_RATE, ENV_SEED, ENV_SITES, active_state, maybe_chaos
from ..ir import Program, RefContext
from ..symbolic import Assumptions, Poly

#: Pairs per batch.  Fixed (not derived from ``jobs``) so the batch a pair
#: lands in — and therefore its chaos scope and failure blast radius — is a
#: function of the program alone.
BATCH_SIZE = 32


@dataclass
class WorkerPayload:
    """Everything a worker needs, shipped once per process at pool start."""

    program: Program
    assumptions: Assumptions
    bounds: dict[str, Poly]
    order: dict[str, int]
    include_input: bool
    audit: bool
    derive_bounds: bool
    pair_budget: int | None
    strict: bool
    use_cache: bool
    cache_dir: str | None
    #: (seed, rate, sites) of the parent's active chaos state, if any.
    chaos: tuple[int, float, frozenset[str] | None] | None
    #: ``REPRO_CHAOS_*`` values to mirror into the worker environment.
    chaos_env: dict[str, str] = field(default_factory=dict)


@dataclass
class _WorkerContext:
    payload: WorkerPayload
    pairs: list[tuple[RefContext, RefContext]]
    cache: ProblemCache | None


_CTX: _WorkerContext | None = None


def _init_worker(payload: WorkerPayload) -> None:
    global _CTX
    from .builder import reference_pairs

    for name in (ENV_SEED, ENV_RATE, ENV_SITES):
        if name in payload.chaos_env:
            os.environ[name] = payload.chaos_env[name]
        else:
            os.environ.pop(name, None)
    cache = None
    if payload.use_cache:
        cache = ProblemCache()
        if payload.cache_dir is not None:
            cache.load_disk(payload.cache_dir)
    _CTX = _WorkerContext(
        payload=payload,
        pairs=reference_pairs(payload.program, payload.include_input),
        cache=cache,
    )


def _run_batch(batch_index: int, lo: int, hi: int):
    """Evaluate pairs ``lo..hi`` in this worker; returns outcomes + cache."""
    from .builder import evaluate_pair

    ctx = _CTX
    assert ctx is not None, "worker used before initialization"
    payload = ctx.payload
    state = None
    if payload.chaos is not None:
        from ..core.chaos import ChaosState

        seed, rate, sites = payload.chaos
        state = ChaosState(seed, rate, sites, scope=f"batch{batch_index}")
    outcomes = []
    with maybe_chaos(state):
        for index in range(lo, hi):
            first, second = ctx.pairs[index]
            outcomes.append(
                evaluate_pair(
                    index,
                    first,
                    second,
                    payload.bounds,
                    payload.assumptions,
                    payload.order,
                    audit=payload.audit,
                    derive_bounds=payload.derive_bounds,
                    pair_budget=payload.pair_budget,
                    strict=payload.strict,
                    cache=ctx.cache,
                )
            )
    fresh = ctx.cache.take_fresh() if ctx.cache is not None else {}
    return outcomes, fresh


def _batches(n_pairs: int) -> list[tuple[int, int]]:
    """Deterministic ``(lo, hi)`` shards of the pair index space."""
    return [
        (lo, min(lo + BATCH_SIZE, n_pairs))
        for lo in range(0, n_pairs, BATCH_SIZE)
    ]


def _degraded_outcomes(pairs, lo: int, hi: int, error: BaseException):
    """Assumed RS001 outcomes for a batch whose worker died."""
    from ..lint import codes
    from ..lint.diagnostics import Diagnostic
    from .builder import PairOutcome, _assumed_specs

    outcomes = []
    for index in range(lo, hi):
        first, second = pairs[index]
        label = (
            f"{first.stmt.label}:{first.ref.array} / "
            f"{second.stmt.label}:{second.ref.array}"
        )
        common = sum(1 for a, b in zip(first.loops, second.loops) if a is b)
        outcome = PairOutcome(index=index, verdict="degraded")
        outcome.edges.extend(_assumed_specs(first, second, common))
        outcome.degradations.append(
            Diagnostic.make(
                codes.RS001,
                "dependence pair: worker failed: "
                f"{type(error).__name__}: {error}",
                statement=label,
                span=first.stmt.span,
            )
        )
        outcomes.append(outcome)
    return outcomes


def evaluate_pairs_parallel(
    program: Program,
    pairs: list[tuple[RefContext, RefContext]],
    bounds: dict[str, Poly],
    assumptions: Assumptions,
    order: dict[str, int],
    *,
    jobs: int,
    include_input: bool,
    audit: bool,
    derive_bounds: bool,
    pair_budget: int | None,
    strict: bool,
    cache: ProblemCache | None,
    cache_dir: str | None,
):
    """Evaluate every pair on a process pool; returns (outcomes, batches).

    Outcomes come back in pair-index order.  New cache entries computed by
    workers are merged into ``cache`` so later calls (and the persistent
    save) see them.
    """
    chaos_state = active_state()
    payload = WorkerPayload(
        program=program,
        assumptions=assumptions,
        bounds=bounds,
        order=order,
        include_input=include_input,
        audit=audit,
        derive_bounds=derive_bounds,
        pair_budget=pair_budget,
        strict=strict,
        use_cache=cache is not None,
        cache_dir=cache_dir,
        chaos=(
            None
            if chaos_state is None
            else (chaos_state.seed, chaos_state.rate, chaos_state.sites)
        ),
        chaos_env={
            name: os.environ[name]
            for name in (ENV_SEED, ENV_RATE, ENV_SITES)
            if name in os.environ
        },
    )
    shards = _batches(len(pairs))
    outcomes_by_index: dict[int, object] = {}
    workers = min(jobs, len(shards))
    with ProcessPoolExecutor(
        max_workers=workers, initializer=_init_worker, initargs=(payload,)
    ) as pool:
        futures = [
            (batch_index, lo, hi, pool.submit(_run_batch, batch_index, lo, hi))
            for batch_index, (lo, hi) in enumerate(shards)
        ]
        for batch_index, lo, hi, future in futures:
            try:
                outcomes, fresh = future.result()
            except BaseException as error:  # noqa: BLE001 — batch barrier
                if strict:
                    raise
                outcomes = _degraded_outcomes(pairs, lo, hi, error)
                fresh = {}
            for outcome in outcomes:
                outcomes_by_index[outcome.index] = outcome
            if cache is not None and fresh:
                cache.merge(fresh)
    return [outcomes_by_index[i] for i in range(len(pairs))], len(shards)
