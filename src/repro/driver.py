"""The end-to-end translator pipeline (the role VIC plays in the paper).

``compile_fortran`` / ``compile_c`` run the full front-half of a
parallelizing compiler: parse, normalize loops, recognize multi-loop
induction variables, linearize EQUIVALENCE alias groups, build the
dependence graph with delinearization, run Allen-Kennedy vectorization,
statically verify the resulting schedule against the graph, and emit the
transformed program — collecting a per-phase report along the way.

Every phase after parsing runs inside an exception barrier
(:class:`repro.core.resilience.Barrier`): an internal error degrades the
phase to its sound conservative fallback — the untransformed program, the
all-assumed :func:`repro.depgraph.conservative_graph`, the fully serial
:func:`repro.vectorizer.serial_plan` — and records an ``RS`` diagnostic on
:attr:`CompilationReport.degradations` instead of aborting the compile.
With ``strict=True`` (the mode CI runs in) internal errors re-raise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .analysis import (
    linearize_common,
    linearize_program,
    normalize_program,
    substitute_induction_variables,
)
from .analysis.linearize import alias_groups
from .analysis.pointers import convert_pointers
from .core.resilience import Barrier
from .depgraph import (
    DependenceGraph,
    GraphPerf,
    analyze_dependences,
    conservative_graph,
)
from .frontend import parse_c, parse_fortran
from .ir import CallStmt, Program, format_program
from .lint import codes
from .lint.diagnostics import Diagnostic, sort_diagnostics
from .symbolic import Assumptions
from .vectorizer import (
    VectorizationResult,
    emit_program,
    serial_plan,
    vectorize,
    verify_schedule,
)


@dataclass
class PerfReport:
    """How the compile spent its time: wall seconds per phase plus the
    dependence-analysis counters (pairs, cache hits, cascade verdicts).

    Reporting only — none of this may influence, or appear inside, the
    outputs the determinism tests compare across ``jobs``/cache settings.
    """

    phase_seconds: dict[str, float] = field(default_factory=dict)
    graph: GraphPerf | None = None

    @property
    def total_seconds(self) -> float:
        return sum(self.phase_seconds.values())

    def format(self) -> str:
        lines = ["phase timings:"]
        for phase, seconds in self.phase_seconds.items():
            lines.append(f"  {phase}: {seconds * 1000:.1f}ms")
        lines.append(f"  total: {self.total_seconds * 1000:.1f}ms")
        if self.graph is not None:
            lines.append(f"dependence analysis: {self.graph.format()}")
        return "\n".join(lines)


class _TimedBarrier(Barrier):
    """A barrier that also meters wall time per phase name."""

    def __init__(self, strict: bool = False):
        super().__init__(strict)
        self.phase_seconds: dict[str, float] = {}

    def run(self, phase, fn, fallback=None, **kwargs):
        started = time.perf_counter()
        try:
            return super().run(phase, fn, fallback, **kwargs)
        finally:
            self.phase_seconds[phase] = (
                self.phase_seconds.get(phase, 0.0)
                + time.perf_counter()
                - started
            )


@dataclass
class CompilationReport:
    """Everything the pipeline produced, phase by phase."""

    source: str
    language: str
    program: Program
    graph: DependenceGraph
    plan: VectorizationResult
    output: str
    phases: list[str] = field(default_factory=list)
    #: Schedule-verifier findings (``VR`` codes); populated when compiled
    #: with ``verify=True`` (the default) and empty for a clean schedule
    #: (advisory VR005 warnings aside).
    schedule_diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Resilience findings (``RS`` codes): phases or dependence pairs that
    #: degraded to their conservative fallback instead of crashing.  Empty
    #: on a fault-free compile.
    degradations: list[Diagnostic] = field(default_factory=list)
    #: Per-phase wall time and dependence-analysis counters.
    perf: PerfReport = field(default_factory=PerfReport)

    @property
    def dependence_count(self) -> int:
        return len(self.graph.edges)

    @property
    def schedule_ok(self) -> bool:
        """True when verification found no error-severity violation."""
        return not any(
            d.severity == "error" for d in self.schedule_diagnostics
        )

    @property
    def degraded(self) -> bool:
        """Did any phase or dependence pair fall back conservatively?"""
        return bool(self.degradations)

    @property
    def audit_diagnostics(self) -> list[Diagnostic]:
        """Soundness-auditor findings (empty unless compiled with audit=True
        — and, with it, empty again unless the analyzer has a bug)."""
        return self.graph.audit_diagnostics

    @property
    def alias_diagnostics(self) -> list[Diagnostic]:
        """Interprocedural findings (``AL``/``RS`` codes) from resolving
        CALL sites; empty for call-free programs and exact translations."""
        return self.graph.alias_diagnostics

    @property
    def control_diagnostics(self) -> list[Diagnostic]:
        """``CD001`` notes for dependences that hold only on guarded paths."""
        from .depgraph import control_diagnostics

        return control_diagnostics(self.graph)

    @property
    def vectorized_statements(self) -> list[str]:
        return self.plan.vectorized_statements()

    @property
    def serial_statements(self) -> list[str]:
        return self.plan.fully_serial_statements()

    def summary(self) -> str:
        lines = [
            f"language: {self.language}",
            f"phases: {', '.join(self.phases)}",
            f"dependences: {self.dependence_count}",
            f"vectorized statements: {', '.join(self.vectorized_statements) or '-'}",
            f"serial statements: {', '.join(self.serial_statements) or '-'}",
        ]
        if "verify-schedule" in self.phases:
            if self.schedule_diagnostics:
                errors = sum(
                    1
                    for d in self.schedule_diagnostics
                    if d.severity == "error"
                )
                warnings = len(self.schedule_diagnostics) - errors
                lines.append(
                    f"schedule verification: {errors} error(s), "
                    f"{warnings} warning(s)"
                )
            else:
                lines.append("schedule verification: clean")
        guarded = sum(1 for edge in self.graph.edges if edge.guarded)
        if guarded:
            lines.append(f"guarded dependences: {guarded}")
        if self.alias_diagnostics:
            lines.append(
                f"interprocedural findings: {len(self.alias_diagnostics)} "
                "(see report.alias_diagnostics)"
            )
        if self.degradations:
            lines.append(
                f"degradations: {len(self.degradations)} "
                "(conservative fallbacks taken; see report.degradations)"
            )
        return "\n".join(lines)


def compile_fortran(
    source: str,
    assumptions: Assumptions | None = None,
    substitute_ivs: bool = True,
    linearize_aliases: bool = True,
    audit: bool = False,
    derive_bounds: bool = True,
    verify: bool = True,
    strict: bool = False,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: str | None = None,
    outcome_cache=None,
    deadline: float | None = None,
) -> CompilationReport:
    """Run the whole pipeline on FORTRAN source text.

    ``audit=True`` re-verifies every delinearization outcome through the
    soundness auditor; findings appear in ``report.audit_diagnostics``.
    ``derive_bounds=False`` turns off assumption inference from declared
    array extents, loop ranges and interval analysis (user assumptions only).
    ``verify`` (on by default) runs the static schedule verifier over the
    vectorizer's output; findings appear in ``report.schedule_diagnostics``.
    ``strict=True`` re-raises internal errors instead of degrading phases
    conservatively (budget exhaustion still degrades — giving up on an
    oversized dependence system is a designed outcome, not a bug).
    ``jobs``, ``use_cache`` and ``cache_dir`` are the dependence-analysis
    performance knobs (see :func:`repro.depgraph.analyze_dependences`); the
    report is byte-identical for every setting, only ``report.perf`` varies.
    """
    barrier = _TimedBarrier(strict=strict)
    phases = ["parse"]
    parse_started = time.perf_counter()
    program = parse_fortran(source)
    barrier.phase_seconds["parse"] = time.perf_counter() - parse_started

    program = barrier.run(
        "normalize", lambda: normalize_program(program), lambda: program
    )
    phases.append("normalize")
    if substitute_ivs and not barrier.failed_phases:
        base = program
        rewritten = barrier.run(
            "induction-variables",
            lambda: substitute_induction_variables(base),
            lambda: base,
        )
        if rewritten is not program:
            phases.append("induction-variables")
        program = rewritten
    if linearize_aliases and not barrier.failed_phases:
        base = program

        def run_linearize() -> Program:
            result = base
            if alias_groups(result):
                result = linearize_program(result)
                result = normalize_program(result)  # renumber statements
                phases.append("linearize-aliases")
            if result.commons:
                result = linearize_common(result)
                phases.append("linearize-common")
            return result

        program = barrier.run("linearize-aliases", run_linearize, lambda: base)

    return _back_half(
        source,
        "fortran",
        program,
        barrier,
        phases,
        assumptions=assumptions,
        audit=audit,
        derive_bounds=derive_bounds,
        verify=verify,
        strict=strict,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        outcome_cache=outcome_cache,
        deadline=deadline,
    )


def compile_c(
    source: str,
    assumptions: Assumptions | None = None,
    audit: bool = False,
    derive_bounds: bool = True,
    verify: bool = True,
    strict: bool = False,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: str | None = None,
    outcome_cache=None,
    deadline: float | None = None,
) -> CompilationReport:
    """Run the whole pipeline on C source text (see :func:`compile_fortran`
    for the ``audit``, ``derive_bounds``, ``verify``, ``strict`` and
    ``jobs``/``use_cache``/``cache_dir`` flags)."""
    barrier = _TimedBarrier(strict=strict)
    phases = ["parse"]
    parse_started = time.perf_counter()
    program, info = parse_c(source)
    barrier.phase_seconds["parse"] = time.perf_counter() - parse_started
    if info.pointers:
        base = program
        converted = barrier.run(
            "pointer-conversion",
            lambda: convert_pointers(base, info),
            lambda: base,
        )
        if converted is not program:
            phases.append("pointer-conversion")
        program = converted
    base = program
    program = barrier.run(
        "normalize", lambda: normalize_program(base), lambda: base
    )
    phases.append("normalize")
    return _back_half(
        source,
        "c",
        program,
        barrier,
        phases,
        assumptions=assumptions,
        audit=audit,
        derive_bounds=derive_bounds,
        verify=verify,
        strict=strict,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
        outcome_cache=outcome_cache,
        deadline=deadline,
    )


def _back_half(
    source: str,
    language: str,
    program: Program,
    barrier: _TimedBarrier,
    phases: list[str],
    *,
    assumptions: Assumptions | None,
    audit: bool,
    derive_bounds: bool,
    verify: bool,
    strict: bool,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: str | None = None,
    outcome_cache=None,
    deadline: float | None = None,
) -> CompilationReport:
    """Dependence analysis through emission, each phase barriered.

    When any front-end phase already degraded, the real dependence analysis
    is skipped outright: the program may be un-normalized or carry
    unlinearized aliases the analysis would silently mismodel.  The
    conservative graph plus a fully serial plan is sound regardless.
    """
    front_degraded = bool(barrier.failed_phases)
    if front_degraded:
        barrier.note(
            codes.RS003,
            "dependence-analysis",
            "front-end degraded; conservative dependence graph assumed",
        )
        graph = barrier.run(
            "dependence-analysis",
            lambda: conservative_graph(program),
            lambda: DependenceGraph(program),
        )
    else:
        graph = barrier.run(
            "dependence-analysis",
            lambda: analyze_dependences(
                program,
                assumptions=assumptions,
                normalized=True,
                audit=audit,
                derive_bounds=derive_bounds,
                strict=strict,
                jobs=jobs,
                use_cache=use_cache,
                cache_dir=cache_dir,
                outcome_cache=outcome_cache,
                deadline=deadline,
            ),
            lambda: conservative_graph(program),
        )
    phases.append("dependence-analysis")
    if any(
        isinstance(stmt, CallStmt)
        for stmt, _loops in graph.program.walk_statements()
    ):
        phases.append("interproc")
    if audit and not barrier.failed("dependence-analysis"):
        phases.append("soundness-audit")

    if front_degraded or barrier.failed("dependence-analysis"):
        # Aliasing or normalization may be mismodelled: even the assumed
        # edges cannot be trusted to cover cross-array conflicts, so the
        # only legal schedule is the original serial one.
        plan = serial_plan(program)
    else:
        plan = barrier.run(
            "vectorize", lambda: vectorize(graph), lambda: serial_plan(program)
        )
    phases.append("vectorize")

    schedule_diags: list[Diagnostic] = []
    if verify:
        schedule_diags = barrier.run(
            "verify-schedule",
            lambda: verify_schedule(plan, graph),
            lambda: [
                Diagnostic.make(
                    codes.RS003,
                    "verify-schedule: verifier failed; schedule is unverified",
                    severity="error",
                )
            ],
        )
        phases.append("verify-schedule")

    output = barrier.run(
        "emit",
        lambda: emit_program(plan),
        lambda: _fallback_output(program, source),
    )
    phases.append("emit")

    return CompilationReport(
        source,
        language,
        program,
        graph,
        plan,
        output,
        phases,
        schedule_diags,
        sort_diagnostics([*graph.degradations, *barrier.degradations]),
        PerfReport(phase_seconds=barrier.phase_seconds, graph=graph.perf),
    )


def _fallback_output(program: Program, source: str) -> str:
    """Emit-phase fallback: the untransformed program, or the raw source."""
    try:
        return format_program(program)
    except Exception:  # noqa: BLE001 — last resort under a failing emitter
        return source


def analyzed_source(report: CompilationReport) -> str:
    """The program text after the front-end transformations."""
    return format_program(report.program)
