"""The end-to-end translator pipeline (the role VIC plays in the paper).

``compile_fortran`` / ``compile_c`` run the full front-half of a
parallelizing compiler: parse, normalize loops, recognize multi-loop
induction variables, linearize EQUIVALENCE alias groups, build the
dependence graph with delinearization, run Allen-Kennedy vectorization,
statically verify the resulting schedule against the graph, and emit the
transformed program — collecting a per-phase report along the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .analysis import (
    linearize_common,
    linearize_program,
    normalize_program,
    substitute_induction_variables,
)
from .analysis.linearize import alias_groups
from .analysis.pointers import convert_pointers
from .depgraph import DependenceGraph, analyze_dependences
from .frontend import parse_c, parse_fortran
from .ir import Program, format_program
from .lint.diagnostics import Diagnostic
from .symbolic import Assumptions
from .vectorizer import (
    VectorizationResult,
    emit_program,
    vectorize,
    verify_schedule,
)


@dataclass
class CompilationReport:
    """Everything the pipeline produced, phase by phase."""

    source: str
    language: str
    program: Program
    graph: DependenceGraph
    plan: VectorizationResult
    output: str
    phases: list[str] = field(default_factory=list)
    #: Schedule-verifier findings (``VR`` codes); populated when compiled
    #: with ``verify=True`` (the default) and empty for a clean schedule
    #: (advisory VR005 warnings aside).
    schedule_diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def dependence_count(self) -> int:
        return len(self.graph.edges)

    @property
    def schedule_ok(self) -> bool:
        """True when verification found no error-severity violation."""
        return not any(
            d.severity == "error" for d in self.schedule_diagnostics
        )

    @property
    def audit_diagnostics(self) -> list[Diagnostic]:
        """Soundness-auditor findings (empty unless compiled with audit=True
        — and, with it, empty again unless the analyzer has a bug)."""
        return self.graph.audit_diagnostics

    @property
    def vectorized_statements(self) -> list[str]:
        return self.plan.vectorized_statements()

    @property
    def serial_statements(self) -> list[str]:
        return self.plan.fully_serial_statements()

    def summary(self) -> str:
        lines = [
            f"language: {self.language}",
            f"phases: {', '.join(self.phases)}",
            f"dependences: {self.dependence_count}",
            f"vectorized statements: {', '.join(self.vectorized_statements) or '-'}",
            f"serial statements: {', '.join(self.serial_statements) or '-'}",
        ]
        if "verify-schedule" in self.phases:
            if self.schedule_diagnostics:
                errors = sum(
                    1
                    for d in self.schedule_diagnostics
                    if d.severity == "error"
                )
                warnings = len(self.schedule_diagnostics) - errors
                lines.append(
                    f"schedule verification: {errors} error(s), "
                    f"{warnings} warning(s)"
                )
            else:
                lines.append("schedule verification: clean")
        return "\n".join(lines)


def compile_fortran(
    source: str,
    assumptions: Assumptions | None = None,
    substitute_ivs: bool = True,
    linearize_aliases: bool = True,
    audit: bool = False,
    derive_bounds: bool = True,
    verify: bool = True,
) -> CompilationReport:
    """Run the whole pipeline on FORTRAN source text.

    ``audit=True`` re-verifies every delinearization outcome through the
    soundness auditor; findings appear in ``report.audit_diagnostics``.
    ``derive_bounds=False`` turns off assumption inference from declared
    array extents, loop ranges and interval analysis (user assumptions only).
    ``verify`` (on by default) runs the static schedule verifier over the
    vectorizer's output; findings appear in ``report.schedule_diagnostics``.
    """
    phases = ["parse"]
    program = parse_fortran(source)
    program = normalize_program(program)
    phases.append("normalize")
    if substitute_ivs:
        rewritten = substitute_induction_variables(program)
        if rewritten is not program:
            phases.append("induction-variables")
        program = rewritten
    if linearize_aliases and alias_groups(program):
        program = linearize_program(program)
        program = normalize_program(program)  # renumber statements
        phases.append("linearize-aliases")
    if linearize_aliases and program.commons:
        program = linearize_common(program)
        phases.append("linearize-common")
    graph = analyze_dependences(
        program,
        assumptions=assumptions,
        normalized=True,
        audit=audit,
        derive_bounds=derive_bounds,
    )
    phases.append("dependence-analysis")
    if audit:
        phases.append("soundness-audit")
    plan = vectorize(graph)
    phases.append("vectorize")
    schedule_diags: list[Diagnostic] = []
    if verify:
        schedule_diags = verify_schedule(plan, graph)
        phases.append("verify-schedule")
    return CompilationReport(
        source,
        "fortran",
        program,
        graph,
        plan,
        emit_program(plan),
        phases,
        schedule_diags,
    )


def compile_c(
    source: str,
    assumptions: Assumptions | None = None,
    audit: bool = False,
    derive_bounds: bool = True,
    verify: bool = True,
) -> CompilationReport:
    """Run the whole pipeline on C source text (see :func:`compile_fortran`
    for the ``audit``, ``derive_bounds`` and ``verify`` flags)."""
    phases = ["parse"]
    program, info = parse_c(source)
    if info.pointers:
        program = convert_pointers(program, info)
        phases.append("pointer-conversion")
    program = normalize_program(program)
    phases.append("normalize")
    graph = analyze_dependences(
        program,
        assumptions=assumptions,
        normalized=True,
        audit=audit,
        derive_bounds=derive_bounds,
    )
    phases.append("dependence-analysis")
    if audit:
        phases.append("soundness-audit")
    plan = vectorize(graph)
    phases.append("vectorize")
    schedule_diags: list[Diagnostic] = []
    if verify:
        schedule_diags = verify_schedule(plan, graph)
        phases.append("verify-schedule")
    return CompilationReport(
        source,
        "c",
        program,
        graph,
        plan,
        emit_program(plan),
        phases,
        schedule_diags,
    )


def analyzed_source(report: CompilationReport) -> str:
    """The program text after the front-end transformations."""
    return format_program(report.program)
