"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``analyze <file>``   — print the dependence table of a program;
* ``vectorize <file>`` — print the vectorized program, statically verified
  against the dependence graph (``--no-verify`` to skip; ``--drop-edge`` /
  ``--interchange`` exercise the verifier);
* ``lint <file>...``   — coded diagnostics (semantic checks, dataflow,
  delinearization soundness audit, ``--schedule`` verification) with
  ``--format=json`` and ``--werror``;
* ``census <file>``    — count loop nests containing linearized references;
* ``delinearize``      — run the algorithm on one dependence equation given
  with ``--equation`` and ``--bounds`` (prints the Figure-5 style trace);
* ``compare``          — run every dependence test on one equation;
* ``riceps``           — regenerate the paper's Figure-1 census table;
* ``serve``            — the resident analysis daemon: JSON-lines protocol
  over stdio or a Unix socket, supervised worker pool, per-request
  deadlines, incremental re-analysis (see ``docs/SERVICE.md``).

The source language is inferred from the file extension (.c vs anything
else) and can be forced with ``--lang``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core import delinearize
from .core.chaos import DEFAULT_RATE, ChaosState, maybe_chaos, state_from_env
from .corpus import RICEPS_PROFILES, census_source, generate_riceps_program
from .deptests import DependenceProblem, Verdict, run_all
from .driver import compile_c, compile_fortran
from .frontend.lexer import TokenStream, tokenize
from .ir import to_linexpr
from .symbolic import Assumptions


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        with maybe_chaos(_chaos_state(args)):
            return args.handler(args)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _chaos_state(args) -> ChaosState | None:
    """Fault-injection state from ``--chaos-*`` flags or ``REPRO_CHAOS_*``.

    Explicit flags win over the environment; with neither, chaos stays off.
    """
    seed = getattr(args, "chaos_seed", None)
    if seed is None:
        return state_from_env()
    rate = getattr(args, "chaos_rate", None)
    return ChaosState(seed, DEFAULT_RATE if rate is None else rate)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Delinearization-based dependence analysis (Maslov, PLDI 1992)",
    )
    sub = parser.add_subparsers(required=True)

    analyze = sub.add_parser("analyze", help="print the dependence table")
    _add_source_args(analyze)
    analyze.add_argument(
        "--perf",
        action="store_true",
        help="also print phase timings and cache/parallelism counters",
    )
    analyze.set_defaults(handler=_cmd_analyze)

    vectorize = sub.add_parser("vectorize", help="print the vectorized program")
    _add_source_args(vectorize)
    vectorize.add_argument(
        "--report", action="store_true", help="also print the phase summary"
    )
    vectorize.add_argument(
        "--perf",
        action="store_true",
        help="also print phase timings and cache/parallelism counters",
    )
    vectorize.add_argument(
        "--emit",
        choices=("f90", "c"),
        default="f90",
        help="output dialect (FORTRAN-90 sections or C with pragmas)",
    )
    vectorize.add_argument(
        "--verify",
        action="store_true",
        help="statically verify the schedule against the dependence graph "
        "(the default)",
    )
    vectorize.add_argument(
        "--no-verify",
        action="store_true",
        help="skip schedule verification",
    )
    vectorize.add_argument(
        "--drop-edge",
        type=int,
        default=None,
        metavar="N",
        help="drop dependence edge N before codegen (verifier-demonstration "
        "knob: the schedule is still checked against the full graph)",
    )
    vectorize.add_argument(
        "--interchange",
        default=None,
        metavar="VAR",
        help="interchange loop VAR with its child before vectorizing "
        "(re-validated from direction vectors unless --no-verify)",
    )
    vectorize.set_defaults(handler=_cmd_vectorize)

    check = sub.add_parser(
        "check", help="static rank/bounds diagnostics for a program"
    )
    _add_source_args(check)
    check.set_defaults(handler=_cmd_check)

    lint = sub.add_parser(
        "lint",
        help="full diagnostics: semantic checks, dataflow, soundness audit",
    )
    _add_source_args(lint, multiple=True)
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--werror",
        action="store_true",
        help="treat warnings as errors (exit 2 on any warning)",
    )
    lint.add_argument(
        "--no-audit",
        action="store_true",
        help="skip the delinearization soundness audit (DS codes)",
    )
    lint.add_argument(
        "--schedule",
        action="store_true",
        help="vectorize and statically verify the schedule (VR codes)",
    )
    lint.set_defaults(handler=_cmd_lint)

    census = sub.add_parser(
        "census", help="count loop nests with linearized references"
    )
    census.add_argument("file", type=Path)
    census.set_defaults(handler=_cmd_census)

    delin = sub.add_parser(
        "delinearize", help="delinearize one dependence equation"
    )
    delin.add_argument(
        "--equation",
        required=True,
        help="e.g. 'i1 + 10*j1 - i2 - 10*j2 - 5'",
    )
    delin.add_argument(
        "--bounds",
        required=True,
        help="comma list, e.g. 'i1=4,i2=4,j1=9,j2=9'",
    )
    delin.add_argument(
        "--pairs",
        default="",
        help="common-level pairs, e.g. 'i1:i2,j1:j2'",
    )
    delin.add_argument(
        "--assume",
        default="",
        help="symbol lower bounds, e.g. 'N=2'",
    )
    delin.set_defaults(handler=_cmd_delinearize)

    compare = sub.add_parser(
        "compare", help="run every dependence test on one equation"
    )
    compare.add_argument("--equation", required=True)
    compare.add_argument("--bounds", required=True)
    compare.set_defaults(handler=_cmd_compare)

    riceps = sub.add_parser("riceps", help="regenerate the Figure-1 table")
    riceps.add_argument(
        "--scale", type=float, default=0.1, help="program size scale factor"
    )
    riceps.set_defaults(handler=_cmd_riceps)

    serve = sub.add_parser(
        "serve",
        help="run the resident analysis daemon (JSON lines over stdio "
        "or a Unix socket; see docs/SERVICE.md)",
    )
    serve.add_argument(
        "--socket",
        type=Path,
        default=None,
        metavar="PATH",
        help="listen on a Unix socket instead of stdio",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="supervised analysis worker processes (default: 1)",
    )
    serve.add_argument(
        "--queue",
        type=int,
        default=16,
        metavar="N",
        help="admission-control queue bound; requests beyond it are shed "
        "with an 'overloaded' response (default: 16)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request wall-clock deadline; a slow request returns a "
        "conservative RS006-degraded answer (default: 30)",
    )
    serve.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persistent canonical-problem cache shared by the workers "
        "(flock-guarded, corruption-tolerant)",
    )
    serve.add_argument(
        "--strict",
        action="store_true",
        help="workers re-raise internal analysis errors (reported as "
        "degraded responses) instead of degrading in-pipeline",
    )
    serve.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="deterministic fault injection across server and workers "
        "(testing knob; see also REPRO_CHAOS_SEED)",
    )
    serve.add_argument(
        "--chaos-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="fault probability per injection-site hit (default "
        f"{DEFAULT_RATE}; only with --chaos-seed)",
    )
    serve.set_defaults(handler=_cmd_serve)
    return parser


def _add_source_args(
    parser: argparse.ArgumentParser, multiple: bool = False
) -> None:
    if multiple:
        parser.add_argument("files", type=Path, nargs="+", metavar="file")
    else:
        parser.add_argument("file", type=Path)
    parser.add_argument(
        "--lang", choices=("fortran", "c"), default=None
    )
    parser.add_argument(
        "--assume", default="", help="symbol lower bounds, e.g. 'N=2'"
    )
    parser.add_argument(
        "--no-derived-bounds",
        action="store_true",
        help="do not infer assumptions from declarations and value ranges",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="re-raise internal analysis errors instead of degrading to "
        "conservative fallbacks (recommended in CI)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="evaluate dependence pairs (and lint multiple files) on N "
        "worker processes; output is identical for any N (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="persist the canonical-problem cache under DIR so repeated "
        "runs are warm (invalidated automatically when analysis code "
        "changes)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the canonical-problem cache (solve every pair fresh)",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="SEED",
        help="enable deterministic fault injection with this seed "
        "(testing knob; see also REPRO_CHAOS_SEED)",
    )
    parser.add_argument(
        "--chaos-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="fault probability per injection-site hit (default "
        f"{DEFAULT_RATE}; only with --chaos-seed)",
    )


def _language_for(path: Path, lang: str | None) -> str:
    if lang:
        return lang
    return "c" if path.suffix == ".c" else "fortran"


def _language_of(args) -> str:
    return _language_for(args.file, args.lang)


def _perf_options(args) -> dict:
    """The dependence-analysis performance knobs shared by every command."""
    cache_dir = getattr(args, "cache_dir", None)
    return {
        "jobs": getattr(args, "jobs", 1),
        "use_cache": not getattr(args, "no_cache", False),
        "cache_dir": None if cache_dir is None else str(cache_dir),
    }


def _compile(args, verify: bool = True):
    source = args.file.read_text()
    assumptions = _parse_assumptions(args.assume)
    derive = not getattr(args, "no_derived_bounds", False)
    strict = getattr(args, "strict", False)
    if _language_of(args) == "c":
        return compile_c(
            source,
            assumptions,
            derive_bounds=derive,
            verify=verify,
            strict=strict,
            **_perf_options(args),
        )
    return compile_fortran(
        source,
        assumptions,
        derive_bounds=derive,
        verify=verify,
        strict=strict,
        **_perf_options(args),
    )


def _cmd_analyze(args) -> int:
    report = _compile(args)
    print(report.graph.format_table())
    if args.perf:
        print(report.perf.format(), file=sys.stderr)
    return 0


def _print_plan(plan, emit: str) -> None:
    if emit == "c":
        from .vectorizer import emit_c_program

        print(emit_c_program(plan), end="")
    else:
        from .vectorizer import emit_program

        print(emit_program(plan), end="")


def _cmd_vectorize(args) -> int:
    verify = not args.no_verify

    if args.drop_edge is None and args.interchange is None:
        report = _compile(args, verify=verify)
        if args.report:
            print(report.summary())
            print()
        _print_plan(report.plan, args.emit)
        for diag in report.schedule_diagnostics:
            print(diag)
        for diag in report.degradations:
            print(diag)
        if args.perf:
            print(report.perf.format(), file=sys.stderr)
        return 0 if report.schedule_ok else 2

    # Mutation / transformation flows drive the pipeline by hand: they need
    # the program and graph before codegen, not just the finished report.
    from .depgraph import analyze_dependences
    from .vectorizer import (
        checked_interchange,
        drop_edge,
        interchange,
        vectorize,
        verify_schedule,
    )
    from .lint.diagnostics import Diagnostic

    report = _compile(args, verify=False)
    program, graph = report.program, report.graph
    assumptions = _parse_assumptions(args.assume)
    derive = not getattr(args, "no_derived_bounds", False)
    diags: list[Diagnostic] = []

    if args.interchange is not None:
        if verify:
            swapped, diags = checked_interchange(
                program, graph, args.interchange
            )
            if swapped is None:
                for diag in diags:
                    print(diag)
                return 2
        else:
            swapped = interchange(program, args.interchange)
        program = swapped
        graph = analyze_dependences(
            program,
            assumptions=assumptions,
            normalized=True,
            derive_bounds=derive,
        )

    # The schedule is verified against the *unmutated* graph: --drop-edge
    # exists to demonstrate that a schedule produced from an incomplete
    # graph is caught.
    codegen_graph = graph
    if args.drop_edge is not None:
        codegen_graph = drop_edge(graph, args.drop_edge)
    plan = vectorize(codegen_graph)
    if verify:
        diags = diags + verify_schedule(plan, graph)

    _print_plan(plan, args.emit)
    for diag in diags:
        print(diag)
    return 2 if any(d.severity == "error" for d in diags) else 0


def _cmd_check(args) -> int:
    from .analysis import check_program, normalize_program
    from .frontend import parse_fortran as parse

    source = args.file.read_text()
    if _language_of(args) == "c":
        from .analysis import convert_pointers
        from .frontend import parse_c

        program, info = parse_c(source)
        program = convert_pointers(program, info)
    else:
        program = parse(source)
    diagnostics = check_program(
        normalize_program(program), _parse_assumptions(args.assume)
    )
    for diagnostic in diagnostics:
        print(diagnostic)
    if not diagnostics:
        print("no problems found")
    return 0 if not any(d.severity == "error" for d in diagnostics) else 2


def _lint_one_file(
    path_str: str,
    language: str,
    assumptions: Assumptions,
    options: dict,
    jobs: int = 1,
    keep_program: bool = True,
):
    """Lint a single path; the unit of work for the multi-file fan-out.

    An unreadable file becomes a DL008 report so the remaining files are
    still linted (one bad path must not abort the whole run).  Pool workers
    call this with ``keep_program=False``: the parent only renders
    diagnostics, so the IR never needs to cross the process boundary.
    """
    from .lint import codes
    from .lint.diagnostics import Diagnostic
    from .lint.engine import LintReport, lint_source

    try:
        source = Path(path_str).read_text()
    except OSError as error:
        report = LintReport(language)
        report.diagnostics = [Diagnostic.make(codes.DL008, str(error))]
        return path_str, report
    report = lint_source(
        source,
        language=language,
        assumptions=assumptions,
        jobs=jobs,
        **options,
    )
    if not keep_program:
        report.program = None
    return path_str, report


def _cmd_lint(args) -> int:
    from .core.chaos import active_state
    from .lint import render_json, render_json_many, render_text

    assumptions = _parse_assumptions(args.assume)
    # Sorted by path so multi-file output (and JSON) is deterministic
    # regardless of the order arguments were given in.
    paths = sorted(args.files, key=str)
    perf = _perf_options(args)
    options = {
        "audit": not args.no_audit,
        "ranges": not args.no_derived_bounds,
        "schedule": args.schedule,
        "strict": args.strict,
        "use_cache": perf["use_cache"],
        "cache_dir": perf["cache_dir"],
    }
    jobs = perf["jobs"]
    work = [
        (str(path), _language_for(path, args.lang)) for path in paths
    ]
    # Fan out whole files when several were given; fan out dependence pairs
    # inside the file otherwise.  Chaos keeps the serial path: workers would
    # draw from per-file fault streams and diverge from a jobs=1 run.
    if jobs > 1 and len(work) > 1 and active_state() is None:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(
            max_workers=min(jobs, len(work))
        ) as pool:
            results = list(
                pool.map(
                    _lint_one_file,
                    [path for path, _ in work],
                    [language for _, language in work],
                    [assumptions] * len(work),
                    [options] * len(work),
                    [1] * len(work),
                    [False] * len(work),
                )
            )
    else:
        file_jobs = jobs if len(work) == 1 else 1
        results = [
            _lint_one_file(path, language, assumptions, options, file_jobs)
            for path, language in work
        ]
    reports = [(Path(path_str), report) for path_str, report in results]

    if args.format == "json":
        if len(reports) == 1:
            path, report = reports[0]
            print(render_json(report.diagnostics, filename=str(path)))
        else:
            print(
                render_json_many(
                    [(str(p), r.diagnostics) for p, r in reports]
                )
            )
    else:
        for path, report in reports:
            if report.diagnostics:
                print(render_text(report.diagnostics, filename=str(path)))
        summary = (
            f"{sum(r.error_count for _, r in reports)} error(s), "
            f"{sum(r.warning_count for _, r in reports)} warning(s)"
        )
        if not args.no_audit and any(r.parsed for _, r in reports):
            audited = sum(r.audited_pairs for _, r in reports)
            summary += f", {audited} dependence edge(s) audited"
        print(summary)
    return 2 if any(r.fails(werror=args.werror) for _, r in reports) else 0


def _cmd_serve(args) -> int:
    from .core.chaos import active_state
    from .server import AnalysisServer, ServerConfig

    config = ServerConfig(
        workers=args.workers,
        queue_size=args.queue,
        deadline_seconds=args.deadline,
        cache_dir=None if args.cache_dir is None else str(args.cache_dir),
        strict=args.strict,
    )
    # main() already installed the chaos state (flags or environment); the
    # server also forwards its parameters into every worker job so faults
    # stay deterministic per request across worker restarts.
    server = AnalysisServer(config, chaos=active_state())
    if args.socket is not None:
        return server.serve_unix(str(args.socket))
    return server.serve_stdio()


def _cmd_census(args) -> int:
    source = args.file.read_text()
    result = census_source(source, args.file.name)
    print(
        f"{result.name}: {result.linearized_nests} of {result.total_nests} "
        f"outermost loop nests contain linearized references"
    )
    return 0


def _cmd_delinearize(args) -> int:
    problem = _parse_problem(
        args.equation, args.bounds, args.pairs, args.assume
    )
    result = delinearize(problem, keep_trace=True)
    print(f"equation: {problem}")
    print(f"verdict:  {result.verdict}")
    print(result.format_trace())
    if result.verdict is not Verdict.INDEPENDENT:
        vectors = ", ".join(sorted(str(v) for v in result.direction_vectors))
        print(f"direction vectors: {vectors}")
        if problem.common_levels:
            print(
                "distance-direction: "
                f"{result.distance_direction_vector(problem.common_levels)}"
            )
    return 0


def _cmd_compare(args) -> int:
    problem = _parse_problem(args.equation, args.bounds, "", "")
    small = problem.is_concrete() and problem.iteration_count() <= 2_000_000
    results = run_all(
        problem, include_exhaustive=small, include_extended=True
    )
    results["Delinearization"] = delinearize(problem).verdict
    width = max(len(name) for name in results)
    for name, verdict in results.items():
        print(f"{name:{width}s}  {verdict}")
    return 0


def _cmd_riceps(args) -> int:
    print(f"{'Program':10s} {'Lines':>6s} {'Paper':>6s} {'Measured':>9s}")
    for profile in RICEPS_PROFILES:
        generated = generate_riceps_program(profile, scale=args.scale)
        result = census_source(generated.source, profile.name)
        print(
            f"{profile.name:10s} {profile.lines:6d} {profile.reported:>6s} "
            f"{result.linearized_nests:9d}"
        )
    return 0


# -- equation parsing -------------------------------------------------------


def _parse_problem(
    equation: str, bounds: str, pairs: str, assume: str
) -> DependenceProblem:
    from .deptests import BoundedVar
    from .symbolic import Poly

    bound_map = _parse_bindings(bounds)
    expr = _parse_equation(equation, set(bound_map))
    pair_list = []
    if pairs:
        for chunk in pairs.split(","):
            a, _, b = chunk.partition(":")
            pair_list.append((a.strip(), b.strip()))
    pair_index: dict[str, tuple[int, int]] = {}
    for level, (a, b) in enumerate(pair_list, start=1):
        pair_index[a] = (level, 0)
        pair_index[b] = (level, 1)
    variables = []
    for name, upper in bound_map.items():
        level, side = pair_index.get(name, (None, None))
        variables.append(BoundedVar(name, upper, level, side))
    assumptions = _parse_assumptions(assume)
    return DependenceProblem(
        [expr], variables, common_levels=len(pair_list), assumptions=assumptions
    )


def _parse_assumptions(text: str) -> Assumptions:
    """Parse 'N=2,M=1' into symbol lower bounds."""
    if not text.strip():
        return Assumptions.empty()
    bounds = {
        name: poly.as_int()
        for name, poly in _parse_bindings(text).items()
    }
    return Assumptions(bounds)


def _parse_bindings(text: str):
    """Parse 'name=value,...' where values are integer expressions."""
    from .symbolic import Poly

    out: dict[str, Poly] = {}
    if not text.strip():
        return out
    for chunk in text.split(","):
        name, _, value = chunk.partition("=")
        name = name.strip()
        if not name or not value.strip():
            raise ValueError(f"bad binding {chunk!r}")
        out[name] = _parse_poly(value.strip())
    return out


def _parse_poly(text: str):
    expr = _parse_scalar_expr(text)
    lowered = to_linexpr(expr, set())
    if lowered is None or not lowered.is_constant():
        raise ValueError(f"not a loop-invariant expression: {text!r}")
    return lowered.const


def _parse_equation(text: str, variables: set[str]):
    expr = _parse_scalar_expr(text)
    lowered = to_linexpr(expr, variables)
    if lowered is None:
        raise ValueError(f"equation is not affine: {text!r}")
    return lowered


def _parse_scalar_expr(text: str):
    """Parse an arithmetic expression using the FORTRAN expression parser."""
    from .frontend.fortran import _FortranParser

    tokens = tokenize(text, comment_chars="!")
    parser = _FortranParser.__new__(_FortranParser)
    parser.ts = TokenStream(tokens)
    parser.implicit_arrays = set()
    from .ir import Program

    parser.program = Program()
    expr = parser.parse_expr()
    if not parser.ts.at_eof():
        parser.ts.expect_end_of_line()
    return expr
