"""Integer symbolic engine: polynomials, assumptions, affine expressions.

This package is the numeric substrate for the whole library.  It is
self-contained (pure Python, no third-party dependencies) and models the
"loop-invariant integer expressions" that the paper's Section 4 ("Symbolics
handling") allows as coefficients of dependence equations.
"""

from .assumptions import Assumptions
from .linexpr import LinExpr, linear_combination
from .poly import Poly, PolyLike, poly_gcd, poly_gcd_many

__all__ = [
    "Assumptions",
    "LinExpr",
    "Poly",
    "PolyLike",
    "linear_combination",
    "poly_gcd",
    "poly_gcd_many",
]
