"""Assumption-based comparison of integer polynomials.

The symbolic delinearization example in the paper needs facts such as

    "Since N**3 - 1 is an upper bound of array A, N**3 >= 1 and
     therefore N >= 1.  Knowing this ... N - 1 < N is a true inequality
     for any N, ... N**2 + N <= N**2 * N for any N > 1."

We capture such knowledge as *lower bounds on symbols* and decide polynomial
inequalities with a sound, incomplete procedure:

    to prove ``p >= 0`` for all integer assignments with ``s >= L_s``,
    substitute ``s = L_s + t_s`` with fresh ``t_s >= 0`` and check that the
    expanded polynomial has only non-negative coefficients.

The check is sufficient (never wrongly claims an inequality) and handles every
comparison the paper's symbolic example requires.  When a bound cannot be
proven either way the query answers ``None`` and callers fall back to
conservative behaviour (no dimension split).
"""

from __future__ import annotations

from typing import Mapping

from .poly import Poly, PolyLike


class Assumptions:
    """A set of integer lower bounds on symbols, e.g. ``{"N": 1}``.

    Symbols without a recorded bound are *unconstrained*: no inequality that
    mentions them can be proven.

    >>> a = Assumptions({"N": 1})
    >>> n = Poly.symbol("N")
    >>> a.is_nonneg(n * n - n)   # N^2 - N >= 0 whenever N >= 1
    True
    >>> a.is_nonneg(n - 5) is None
    True
    """

    def __init__(self, lower_bounds: Mapping[str, int] | None = None):
        self._lower: dict[str, int] = dict(lower_bounds or {})

    @classmethod
    def empty(cls) -> "Assumptions":
        return cls()

    def lower_bound(self, symbol: str) -> int | None:
        """The recorded lower bound for ``symbol`` (None when unknown)."""
        return self._lower.get(symbol)

    def symbols(self) -> set[str]:
        """The symbols these assumptions constrain.

        Used by the lint dataflow passes to verify each constrained symbol
        really is a loop-invariant parameter of the analyzed program.
        """
        return set(self._lower)

    def with_bound(self, symbol: str, lower: int) -> "Assumptions":
        """A new assumption set with ``symbol >= lower`` added (tightening only)."""
        merged = dict(self._lower)
        if symbol in merged:
            merged[symbol] = max(merged[symbol], lower)
        else:
            merged[symbol] = lower
        return Assumptions(merged)

    # -- provers ------------------------------------------------------------

    def is_nonneg(self, p: PolyLike) -> bool | None:
        """Prove ``p >= 0`` under the assumptions.

        Returns True when proven, None when unknown.  (The procedure cannot
        prove negations; use ``is_nonneg(-p)`` for the other direction.)
        """
        p = Poly.coerce(p)
        if p.is_constant():
            return True if p.as_int() >= 0 else None
        substitution: dict[str, Poly] = {}
        for sym in p.symbols():
            lower = self._lower.get(sym)
            if lower is None:
                return None
            # s = lower + t_s with t_s >= 0; reuse the original name for t.
            substitution[sym] = Poly.symbol(f"_t_{sym}") + lower
        shifted = p.subs(substitution)
        if all(coeff >= 0 for coeff in shifted.terms.values()):
            return True
        return None

    def is_nonpos(self, p: PolyLike) -> bool | None:
        """Prove ``p <= 0``."""
        return self.is_nonneg(-Poly.coerce(p))

    def is_pos(self, p: PolyLike) -> bool | None:
        """Prove ``p >= 1`` (strict positivity for integer-valued p)."""
        return self.is_nonneg(Poly.coerce(p) - 1)

    def is_neg(self, p: PolyLike) -> bool | None:
        """Prove ``p <= -1``."""
        return self.is_nonneg(-Poly.coerce(p) - 1)

    def is_lt(self, a: PolyLike, b: PolyLike) -> bool | None:
        """Prove ``a < b`` (for integer values: ``b - a >= 1``)."""
        return self.is_pos(Poly.coerce(b) - Poly.coerce(a))

    def is_le(self, a: PolyLike, b: PolyLike) -> bool | None:
        """Prove ``a <= b``."""
        return self.is_nonneg(Poly.coerce(b) - Poly.coerce(a))

    def sign(self, p: PolyLike) -> int | None:
        """Return a proven sign: +1, -1, 0, or None when undecided.

        +1 means ``p >= 0`` and p is not the zero polynomial (for sorting by
        magnitude a weak sign suffices); 0 means p is identically zero.
        """
        p = Poly.coerce(p)
        if p.is_zero():
            return 0
        if p.is_constant():
            return 1 if p.as_int() > 0 else -1
        if self.is_nonneg(p):
            return 1
        if self.is_nonpos(p):
            return -1
        return None

    def abs_poly(self, p: PolyLike) -> Poly | None:
        """Return a polynomial equal to ``|p|`` when the sign is provable."""
        p = Poly.coerce(p)
        sgn = self.sign(p)
        if sgn is None:
            return None
        return p if sgn >= 0 else -p

    def abs_le(self, a: PolyLike, b: PolyLike) -> bool | None:
        """Prove ``|a| <= |b|`` (requires provable signs of both)."""
        abs_a = self.abs_poly(a)
        abs_b = self.abs_poly(b)
        if abs_a is None or abs_b is None:
            return None
        return self.is_le(abs_a, abs_b)

    def __repr__(self) -> str:
        bounds = ", ".join(f"{s} >= {v}" for s, v in sorted(self._lower.items()))
        return f"Assumptions({bounds})"
