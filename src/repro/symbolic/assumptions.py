"""Assumption-based comparison of integer polynomials.

The symbolic delinearization example in the paper needs facts such as

    "Since N**3 - 1 is an upper bound of array A, N**3 >= 1 and
     therefore N >= 1.  Knowing this ... N - 1 < N is a true inequality
     for any N, ... N**2 + N <= N**2 * N for any N > 1."

We capture such knowledge as *integer intervals on symbols* — a lower bound,
an upper bound, or both — and decide polynomial inequalities with a sound,
incomplete procedure:

    to prove ``p >= 0`` for all integer assignments with ``s in [L_s, U_s]``,
    substitute either ``s = L_s + t_s`` or ``s = U_s - t_s`` with fresh
    ``t_s >= 0`` and check that the expanded polynomial has only non-negative
    coefficients.  Each substitution covers a superset of the interval
    (``s >= L_s`` respectively ``s <= U_s``), so success is always sound;
    when a symbol carries both bounds every combination of shift directions
    is tried.

The check is sufficient (never wrongly claims an inequality) and handles every
comparison the paper's symbolic example requires.  When a bound cannot be
proven either way the query answers ``None`` and callers fall back to
conservative behaviour (no dimension split).

Queries are memoized per instance: the shifted-polynomial expansion dominates
the delinearization hot path (every barrier check asks several ``is_nonneg``
questions about the same running extremes), and :class:`Assumptions` values
are immutable, so caching is free precision-wise.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Mapping

from .poly import Poly, PolyLike

#: Trying every combination of lower/upper shifts is exponential in the
#: number of doubly-bounded symbols; beyond this many combinations only the
#: first available shift per symbol is used.
_MAX_SHIFT_COMBINATIONS = 64

_MISSING = object()


class Assumptions:
    """A set of integer intervals on symbols, e.g. ``{"N": 1}`` for ``N >= 1``.

    The positional mapping gives *lower* bounds (the historical form);
    ``upper_bounds`` adds the other end.  Symbols without any recorded bound
    are *unconstrained*: no inequality that mentions them can be proven.

    >>> a = Assumptions({"N": 1})
    >>> n = Poly.symbol("N")
    >>> a.is_nonneg(n * n - n)   # N^2 - N >= 0 whenever N >= 1
    True
    >>> a.is_nonneg(n - 5) is None
    True

    Upper bounds make the mirrored queries provable:

    >>> b = Assumptions(upper_bounds={"N": 4})
    >>> b.is_nonneg(5 - n)       # 5 - N >= 0 whenever N <= 4
    True
    >>> b.is_nonpos(n - 4)
    True
    """

    def __init__(
        self,
        lower_bounds: Mapping[str, int] | None = None,
        upper_bounds: Mapping[str, int] | None = None,
    ):
        self._lower: dict[str, int] = dict(lower_bounds or {})
        self._upper: dict[str, int] = dict(upper_bounds or {})
        self._nonneg_cache: dict[Poly, bool | None] = {}

    @classmethod
    def empty(cls) -> "Assumptions":
        return cls()

    def lower_bound(self, symbol: str) -> int | None:
        """The recorded lower bound for ``symbol`` (None when unknown)."""
        return self._lower.get(symbol)

    def upper_bound(self, symbol: str) -> int | None:
        """The recorded upper bound for ``symbol`` (None when unknown)."""
        return self._upper.get(symbol)

    def interval(self, symbol: str) -> tuple[int | None, int | None]:
        """The recorded ``(lower, upper)`` interval for ``symbol``."""
        return self._lower.get(symbol), self._upper.get(symbol)

    def symbols(self) -> set[str]:
        """The symbols these assumptions constrain.

        Used by the lint dataflow passes to verify each constrained symbol
        really is a loop-invariant parameter of the analyzed program.
        """
        return set(self._lower) | set(self._upper)

    def is_empty(self) -> bool:
        """True when no symbol carries any bound."""
        return not self._lower and not self._upper

    def items(self) -> Iterator[tuple[str, int | None, int | None]]:
        """Iterate ``(symbol, lower, upper)`` triples in name order."""
        for symbol in sorted(self.symbols()):
            yield symbol, self._lower.get(symbol), self._upper.get(symbol)

    def with_bound(self, symbol: str, lower: int) -> "Assumptions":
        """A new assumption set with ``symbol >= lower`` added (tightening only)."""
        return self.with_interval(symbol, lower=lower)

    def with_upper_bound(self, symbol: str, upper: int) -> "Assumptions":
        """A new assumption set with ``symbol <= upper`` added (tightening only)."""
        return self.with_interval(symbol, upper=upper)

    def with_interval(
        self,
        symbol: str,
        lower: int | None = None,
        upper: int | None = None,
    ) -> "Assumptions":
        """A new assumption set with ``lower <= symbol <= upper`` added.

        Existing bounds are only ever tightened (max of lower bounds, min of
        upper bounds); ``None`` leaves an end unchanged.
        """
        lowers = dict(self._lower)
        uppers = dict(self._upper)
        if lower is not None:
            lowers[symbol] = (
                max(lowers[symbol], lower) if symbol in lowers else lower
            )
        if upper is not None:
            uppers[symbol] = (
                min(uppers[symbol], upper) if symbol in uppers else upper
            )
        return Assumptions(lowers, uppers)

    def merged(self, other: "Assumptions") -> "Assumptions":
        """Combine two assumption sets, keeping the tighter bound per end."""
        result = self
        for symbol, lower, upper in other.items():
            result = result.with_interval(symbol, lower, upper)
        return result

    # -- provers ------------------------------------------------------------

    def is_nonneg(self, p: PolyLike) -> bool | None:
        """Prove ``p >= 0`` under the assumptions.

        Returns True when proven, None when unknown.  (The procedure cannot
        prove negations; use ``is_nonneg(-p)`` for the other direction.)
        """
        p = Poly.coerce(p)
        if p.is_constant():
            return True if p.as_int() >= 0 else None
        cached = self._nonneg_cache.get(p, _MISSING)
        if cached is not _MISSING:
            return cached  # type: ignore[return-value]
        result = self._prove_nonneg(p)
        self._nonneg_cache[p] = result
        return result

    def _prove_nonneg(self, p: Poly) -> bool | None:
        """The uncached shift-and-expand procedure behind :meth:`is_nonneg`."""
        per_symbol: list[tuple[str, list[Poly]]] = []
        combinations = 1
        for sym in sorted(p.symbols()):
            shifts: list[Poly] = []
            lower = self._lower.get(sym)
            upper = self._upper.get(sym)
            fresh = Poly.symbol(f"_t_{sym}")
            if lower is not None:
                # s = lower + t with t >= 0 covers all s >= lower.
                shifts.append(fresh + lower)
            if upper is not None:
                # s = upper - t with t >= 0 covers all s <= upper.
                shifts.append(-fresh + upper)
            if not shifts:
                return None
            per_symbol.append((sym, shifts))
            combinations *= len(shifts)
        if combinations > _MAX_SHIFT_COMBINATIONS:
            per_symbol = [(sym, shifts[:1]) for sym, shifts in per_symbol]
        for choice in product(*(shifts for _, shifts in per_symbol)):
            substitution = {
                sym: shift
                for (sym, _), shift in zip(per_symbol, choice)
            }
            shifted = p.subs(substitution)
            if all(coeff >= 0 for coeff in shifted.terms.values()):
                return True
        return None

    def is_nonpos(self, p: PolyLike) -> bool | None:
        """Prove ``p <= 0``."""
        return self.is_nonneg(-Poly.coerce(p))

    def is_pos(self, p: PolyLike) -> bool | None:
        """Prove ``p >= 1`` (strict positivity for integer-valued p)."""
        return self.is_nonneg(Poly.coerce(p) - 1)

    def is_neg(self, p: PolyLike) -> bool | None:
        """Prove ``p <= -1``."""
        return self.is_nonneg(-Poly.coerce(p) - 1)

    def is_lt(self, a: PolyLike, b: PolyLike) -> bool | None:
        """Prove ``a < b`` (for integer values: ``b - a >= 1``)."""
        return self.is_pos(Poly.coerce(b) - Poly.coerce(a))

    def is_le(self, a: PolyLike, b: PolyLike) -> bool | None:
        """Prove ``a <= b``."""
        return self.is_nonneg(Poly.coerce(b) - Poly.coerce(a))

    def sign(self, p: PolyLike) -> int | None:
        """Return a proven sign: +1, -1, 0, or None when undecided.

        +1 means ``p >= 0`` and p is not the zero polynomial (for sorting by
        magnitude a weak sign suffices); 0 means p is identically zero.
        """
        p = Poly.coerce(p)
        if p.is_zero():
            return 0
        if p.is_constant():
            return 1 if p.as_int() > 0 else -1
        if self.is_nonneg(p):
            return 1
        if self.is_nonpos(p):
            return -1
        return None

    def abs_poly(self, p: PolyLike) -> Poly | None:
        """Return a polynomial equal to ``|p|`` when the sign is provable."""
        p = Poly.coerce(p)
        sgn = self.sign(p)
        if sgn is None:
            return None
        return p if sgn >= 0 else -p

    def abs_le(self, a: PolyLike, b: PolyLike) -> bool | None:
        """Prove ``|a| <= |b|`` (requires provable signs of both)."""
        abs_a = self.abs_poly(a)
        abs_b = self.abs_poly(b)
        if abs_a is None or abs_b is None:
            return None
        return self.is_le(abs_a, abs_b)

    def __repr__(self) -> str:
        parts = []
        for symbol, lower, upper in self.items():
            if lower is not None and upper is not None:
                parts.append(f"{lower} <= {symbol} <= {upper}")
            elif lower is not None:
                parts.append(f"{symbol} >= {lower}")
            else:
                parts.append(f"{symbol} <= {upper}")
        return f"Assumptions({', '.join(parts)})"
