"""Multivariate integer polynomials.

This is the numeric substrate for *symbolic delinearization* (paper section
"Symbolics handling").  Coefficients of dependence equations are allowed to be
loop-invariant integer expressions such as ``N`` or ``N*N + N``; we model them
as polynomials over named symbols with integer coefficients.

The module is deliberately self-contained: the library never imports sympy
(sympy appears only as an oracle inside the test suite).

A polynomial is represented as a mapping from *monomials* to integer
coefficients.  A monomial is a canonical tuple of ``(symbol, exponent)`` pairs
sorted by symbol name; the empty tuple is the constant monomial.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable, Mapping, Union

Monomial = tuple[tuple[str, int], ...]

#: Values accepted wherever a polynomial is expected.
PolyLike = Union["Poly", int]

_CONST_MONO: Monomial = ()


def _mono_mul(a: Monomial, b: Monomial) -> Monomial:
    """Multiply two monomials (merge exponent maps)."""
    if not a:
        return b
    if not b:
        return a
    powers: dict[str, int] = dict(a)
    for sym, exp in b:
        powers[sym] = powers.get(sym, 0) + exp
    return tuple(sorted((s, e) for s, e in powers.items() if e))


def _mono_divides(a: Monomial, b: Monomial) -> bool:
    """Return True when monomial ``a`` divides monomial ``b``."""
    if not a:
        return True
    bmap = dict(b)
    return all(bmap.get(sym, 0) >= exp for sym, exp in a)


def _mono_div(b: Monomial, a: Monomial) -> Monomial:
    """Divide monomial ``b`` by ``a``; caller must ensure divisibility."""
    if not a:
        return b
    powers = dict(b)
    for sym, exp in a:
        powers[sym] -= exp
    return tuple(sorted((s, e) for s, e in powers.items() if e))


def _mono_gcd(a: Monomial, b: Monomial) -> Monomial:
    """Greatest common monomial factor."""
    if not a or not b:
        return _CONST_MONO
    bmap = dict(b)
    out = []
    for sym, exp in a:
        common = min(exp, bmap.get(sym, 0))
        if common:
            out.append((sym, common))
    return tuple(sorted(out))


def _mono_degree(m: Monomial) -> int:
    return sum(exp for _, exp in m)


def _mono_str(m: Monomial) -> str:
    if not m:
        return "1"
    parts = []
    for sym, exp in m:
        parts.append(sym if exp == 1 else f"{sym}^{exp}")
    return "*".join(parts)


class Poly:
    """An immutable multivariate polynomial with integer coefficients.

    Construct with :meth:`const`, :meth:`symbol`, or arithmetic on existing
    polynomials.  Plain ``int`` operands are accepted by every operator.

    >>> n = Poly.symbol("N")
    >>> (n + 1) * (n - 1)
    Poly(N^2 - 1)
    """

    __slots__ = ("_terms", "_hash")

    def __init__(self, terms: Mapping[Monomial, int] | None = None):
        cleaned = {m: c for m, c in (terms or {}).items() if c}
        self._terms: dict[Monomial, int] = cleaned
        self._hash: int | None = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def const(cls, value: int) -> "Poly":
        """The constant polynomial ``value``."""
        return cls({_CONST_MONO: int(value)})

    @classmethod
    def symbol(cls, name: str) -> "Poly":
        """The polynomial consisting of the single symbol ``name``."""
        if not name or not isinstance(name, str):
            raise ValueError(f"symbol name must be a non-empty string: {name!r}")
        return cls({((name, 1),): 1})

    @classmethod
    def coerce(cls, value: PolyLike) -> "Poly":
        """Convert an ``int`` (or pass through a :class:`Poly`)."""
        if isinstance(value, Poly):
            return value
        if isinstance(value, bool):
            raise TypeError("bool is not a polynomial")
        if isinstance(value, int):
            return cls.const(value)
        raise TypeError(f"cannot coerce {type(value).__name__} to Poly")

    # -- inspection --------------------------------------------------------

    @property
    def terms(self) -> Mapping[Monomial, int]:
        """Read-only view of monomial -> coefficient."""
        return dict(self._terms)

    def is_zero(self) -> bool:
        return not self._terms

    def is_constant(self) -> bool:
        """True when the polynomial mentions no symbols."""
        return all(m == _CONST_MONO for m in self._terms)

    def as_int(self) -> int:
        """The value of a constant polynomial.

        Raises :class:`ValueError` when the polynomial is not constant.
        """
        if not self._terms:
            return 0
        if not self.is_constant():
            raise ValueError(f"{self} is not a constant")
        return self._terms[_CONST_MONO]

    def constant_term(self) -> int:
        """Coefficient of the constant monomial (0 when absent)."""
        return self._terms.get(_CONST_MONO, 0)

    def symbols(self) -> set[str]:
        """The set of symbol names mentioned."""
        out: set[str] = set()
        for mono in self._terms:
            out.update(sym for sym, _ in mono)
        return out

    def degree(self) -> int:
        """Total degree (0 for constants, 0 for the zero polynomial)."""
        if not self._terms:
            return 0
        return max(_mono_degree(m) for m in self._terms)

    def term_count(self) -> int:
        return len(self._terms)

    def is_single_term(self) -> bool:
        """True when the polynomial is ``coeff * monomial`` (one term)."""
        return len(self._terms) == 1

    def content(self) -> int:
        """GCD of all coefficients (non-negative; 0 for the zero poly)."""
        return math.gcd(*self._terms.values()) if self._terms else 0

    def monomial_factor(self) -> Monomial:
        """Greatest monomial dividing every term (constant mono if none)."""
        monos = iter(self._terms)
        try:
            acc = next(monos)
        except StopIteration:
            return _CONST_MONO
        for m in monos:
            acc = _mono_gcd(acc, m)
            if not acc:
                break
        return acc

    # -- arithmetic ---------------------------------------------------------

    @staticmethod
    def _try_coerce(value: object) -> "Poly | None":
        """Coerce for operators: None (-> NotImplemented) on foreign types."""
        if isinstance(value, Poly):
            return value
        if isinstance(value, int) and not isinstance(value, bool):
            return Poly.const(value)
        return None

    def __add__(self, other: PolyLike) -> "Poly":
        other = Poly._try_coerce(other)
        if other is None:
            return NotImplemented
        terms = dict(self._terms)
        for mono, coeff in other._terms.items():
            terms[mono] = terms.get(mono, 0) + coeff
        return Poly(terms)

    __radd__ = __add__

    def __neg__(self) -> "Poly":
        return Poly({m: -c for m, c in self._terms.items()})

    def __sub__(self, other: PolyLike) -> "Poly":
        other = Poly._try_coerce(other)
        if other is None:
            return NotImplemented
        return self + (-other)

    def __rsub__(self, other: PolyLike) -> "Poly":
        other = Poly._try_coerce(other)
        if other is None:
            return NotImplemented
        return (-self) + other

    def __mul__(self, other: PolyLike) -> "Poly":
        other = Poly._try_coerce(other)
        if other is None:
            return NotImplemented
        terms: dict[Monomial, int] = {}
        for m1, c1 in self._terms.items():
            for m2, c2 in other._terms.items():
                mono = _mono_mul(m1, m2)
                terms[mono] = terms.get(mono, 0) + c1 * c2
        return Poly(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Poly":
        if not isinstance(exponent, int) or exponent < 0:
            raise ValueError(f"exponent must be a non-negative int: {exponent!r}")
        result = Poly.const(1)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    # -- substitution and evaluation -----------------------------------------

    def subs(self, mapping: Mapping[str, PolyLike]) -> "Poly":
        """Substitute polynomials (or ints) for symbols.

        Symbols absent from ``mapping`` are kept as-is.
        """
        if not mapping:
            return self
        result = Poly()
        for mono, coeff in self._terms.items():
            term = Poly.const(coeff)
            for sym, exp in mono:
                if sym in mapping:
                    term = term * (Poly.coerce(mapping[sym]) ** exp)
                else:
                    term = term * (Poly.symbol(sym) ** exp)
            result = result + term
        return result

    def evaluate(self, values: Mapping[str, int]) -> int:
        """Evaluate at an integer point; every symbol must be supplied."""
        total = 0
        for mono, coeff in self._terms.items():
            prod = coeff
            for sym, exp in mono:
                if sym not in values:
                    raise KeyError(f"no value for symbol {sym!r}")
                prod *= values[sym] ** exp
            total += prod
        return total

    # -- divisibility ----------------------------------------------------------

    def divides_term(self, mono: Monomial, coeff: int) -> bool:
        """True when single-term ``self`` divides the term ``coeff * mono``.

        Only meaningful for single-term divisors; multi-term divisors raise.
        """
        if not self.is_single_term():
            raise ValueError(f"divisor {self} is not a single term")
        ((gmono, gcoeff),) = self._terms.items()
        return coeff % gcoeff == 0 and _mono_divides(gmono, mono)

    def divmod_single(self, divisor: "Poly") -> tuple["Poly", "Poly"]:
        """Split ``self = q*divisor + r`` for a single-term ``divisor``.

        Every term whose monomial part is divisible by the divisor's monomial
        contributes its largest multiple of the divisor coefficient to the
        quotient; the rest (including wholly indivisible terms) stays in the
        remainder.  For constant ``self`` and ``divisor`` this coincides with
        Python's ``divmod`` (remainder in ``[0, divisor)`` for positive
        divisors).

        This is exactly the decomposition ``c0 = D0 + r`` the delinearization
        algorithm needs: the quotient part ``q*divisor`` is divisible by the
        suffix gcd.
        """
        if divisor.is_zero():
            raise ZeroDivisionError("division by zero polynomial")
        if not divisor.is_single_term():
            raise ValueError(f"divisor {divisor} is not a single term")
        ((gmono, gcoeff),) = divisor._terms.items()
        q_terms: dict[Monomial, int] = {}
        r_terms: dict[Monomial, int] = {}
        for mono, coeff in self._terms.items():
            if _mono_divides(gmono, mono):
                q, r = divmod(coeff, gcoeff)
                if q:
                    q_terms[_mono_div(mono, gmono)] = q
                if r:
                    r_terms[mono] = r
            else:
                r_terms[mono] = coeff
        return Poly(q_terms), Poly(r_terms)

    def exact_div(self, divisor: int) -> "Poly":
        """Divide every coefficient by an integer that must divide exactly."""
        if divisor == 0:
            raise ZeroDivisionError("exact_div by zero")
        terms = {}
        for mono, coeff in self._terms.items():
            if coeff % divisor:
                raise ValueError(f"{divisor} does not divide {self}")
            terms[mono] = coeff // divisor
        return Poly(terms)

    # -- comparisons / hashing ----------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            other = Poly.const(other)
        if not isinstance(other, Poly):
            return NotImplemented
        return self._terms == other._terms

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._terms.items()))
        return self._hash

    def __bool__(self) -> bool:
        return bool(self._terms)

    # -- display -----------------------------------------------------------------

    def __str__(self) -> str:
        if not self._terms:
            return "0"
        ordered = sorted(
            self._terms.items(),
            key=lambda item: (-_mono_degree(item[0]), item[0]),
        )
        parts: list[str] = []
        for mono, coeff in ordered:
            if mono == _CONST_MONO:
                body = str(abs(coeff))
            elif abs(coeff) == 1:
                body = _mono_str(mono)
            else:
                body = f"{abs(coeff)}*{_mono_str(mono)}"
            if not parts:
                parts.append(body if coeff > 0 else f"-{body}")
            else:
                parts.append(f"+ {body}" if coeff > 0 else f"- {body}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"Poly({self})"


def poly_gcd(a: PolyLike, b: PolyLike) -> Poly:
    """A conservative GCD of two polynomials.

    Returns ``content_gcd * common_monomial_factor``.  This is always a common
    divisor of both arguments (which is all the delinearization theorem
    requires: soundness never depends on the gcd being *greatest*), and it is
    exact for the single-term coefficients that arise from linearized array
    subscripts (``1``, ``N``, ``N*N``, ``10``, ``100``...).

    >>> poly_gcd(Poly.symbol("N") ** 2, Poly.symbol("N"))
    Poly(N)
    >>> poly_gcd(100, 10).as_int()
    10
    """
    return _poly_gcd_cached(Poly.coerce(a), Poly.coerce(b))


@lru_cache(maxsize=4096)
def _poly_gcd_cached(a: Poly, b: Poly) -> Poly:
    if a.is_zero():
        return _positive_content(b)
    if b.is_zero():
        return _positive_content(a)
    content = math.gcd(a.content(), b.content())
    mono = _mono_gcd(a.monomial_factor(), b.monomial_factor())
    return Poly({mono: content})


def poly_gcd_many(values: Iterable[PolyLike]) -> Poly:
    """GCD of a sequence of polynomials (zero polynomial when empty)."""
    acc = Poly()
    for value in values:
        acc = poly_gcd(acc, value)
        if acc == Poly.const(1):
            break
    return acc


def _positive_content(p: Poly) -> Poly:
    """Normalize a polynomial used as a gcd: positive leading content."""
    if p.is_zero():
        return p
    content = p.content()
    mono = p.monomial_factor()
    return Poly({mono: content})
