"""Affine (linear) expressions over loop variables.

A :class:`LinExpr` is ``const + sum(coeff_v * v)`` where each coefficient and
the constant are integer polynomials in *loop-invariant* symbols
(:class:`~repro.symbolic.poly.Poly`), and the variables ``v`` are loop
iteration variables identified by name.

These are the subscript functions f_i / g_i of the paper (eqs. (3), (4)) and,
after combining a pair of references, the dependence equations (5).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Union

from .poly import Poly, PolyLike

LinLike = Union["LinExpr", Poly, int]


class LinExpr:
    """Immutable affine expression: ``const + sum coeffs[v] * v``.

    >>> i, j = LinExpr.var("i"), LinExpr.var("j")
    >>> str(i + 10 * j + 5)
    'i + 10*j + 5'
    """

    __slots__ = ("_coeffs", "_const")

    def __init__(
        self,
        coeffs: Mapping[str, PolyLike] | None = None,
        const: PolyLike = 0,
    ):
        cleaned: dict[str, Poly] = {}
        for name, coeff in (coeffs or {}).items():
            poly = Poly.coerce(coeff)
            if not poly.is_zero():
                cleaned[name] = poly
        self._coeffs = cleaned
        self._const = Poly.coerce(const)

    # -- constructors ------------------------------------------------------

    @classmethod
    def var(cls, name: str) -> "LinExpr":
        """The expression consisting of a single variable."""
        return cls({name: 1})

    @classmethod
    def const_expr(cls, value: PolyLike) -> "LinExpr":
        return cls({}, value)

    @classmethod
    def coerce(cls, value: LinLike) -> "LinExpr":
        if isinstance(value, LinExpr):
            return value
        if isinstance(value, (Poly, int)):
            return cls({}, value)
        raise TypeError(f"cannot coerce {type(value).__name__} to LinExpr")

    # -- inspection ----------------------------------------------------------

    @property
    def coeffs(self) -> Mapping[str, Poly]:
        return dict(self._coeffs)

    @property
    def const(self) -> Poly:
        return self._const

    def coeff(self, name: str) -> Poly:
        """Coefficient of variable ``name`` (zero when absent)."""
        return self._coeffs.get(name, Poly())

    def variables(self) -> set[str]:
        return set(self._coeffs)

    def is_constant(self) -> bool:
        return not self._coeffs

    def is_zero(self) -> bool:
        return not self._coeffs and self._const.is_zero()

    def symbols(self) -> set[str]:
        """Symbolic parameters mentioned in coefficients or constant."""
        out = set(self._const.symbols())
        for coeff in self._coeffs.values():
            out |= coeff.symbols()
        return out

    def is_integer_concrete(self) -> bool:
        """True when every coefficient and the constant are plain integers."""
        return self._const.is_constant() and all(
            c.is_constant() for c in self._coeffs.values()
        )

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: LinLike) -> "LinExpr":
        other = LinExpr.coerce(other)
        coeffs = dict(self._coeffs)
        for name, coeff in other._coeffs.items():
            coeffs[name] = coeffs.get(name, Poly()) + coeff
        return LinExpr(coeffs, self._const + other._const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({n: -c for n, c in self._coeffs.items()}, -self._const)

    def __sub__(self, other: LinLike) -> "LinExpr":
        return self + (-LinExpr.coerce(other))

    def __rsub__(self, other: LinLike) -> "LinExpr":
        return (-self) + LinExpr.coerce(other)

    def __mul__(self, factor: PolyLike) -> "LinExpr":
        """Multiply by a loop-invariant polynomial (or int)."""
        factor = Poly.coerce(factor)
        return LinExpr(
            {n: c * factor for n, c in self._coeffs.items()},
            self._const * factor,
        )

    __rmul__ = __mul__

    # -- substitution / evaluation -----------------------------------------------

    def substitute_var(self, name: str, replacement: "LinExpr") -> "LinExpr":
        """Replace variable ``name`` by an affine expression."""
        if name not in self._coeffs:
            return self
        coeff = self._coeffs[name]
        rest = LinExpr(
            {n: c for n, c in self._coeffs.items() if n != name}, self._const
        )
        return rest + replacement * coeff

    def rename_vars(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename variables (used to keep the two sides of a pair apart)."""
        coeffs: dict[str, Poly] = {}
        for name, coeff in self._coeffs.items():
            new = mapping.get(name, name)
            coeffs[new] = coeffs.get(new, Poly()) + coeff
        return LinExpr(coeffs, self._const)

    def subs_symbols(self, mapping: Mapping[str, PolyLike]) -> "LinExpr":
        """Substitute values for symbolic parameters in all coefficients."""
        return LinExpr(
            {n: c.subs(mapping) for n, c in self._coeffs.items()},
            self._const.subs(mapping),
        )

    def evaluate(
        self,
        var_values: Mapping[str, int],
        sym_values: Mapping[str, int] | None = None,
    ) -> int:
        """Evaluate at an integer point."""
        sym_values = sym_values or {}
        total = self._const.evaluate(sym_values)
        for name, coeff in self._coeffs.items():
            if name not in var_values:
                raise KeyError(f"no value for variable {name!r}")
            total += coeff.evaluate(sym_values) * var_values[name]
        return total

    # -- comparisons ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, Poly)):
            other = LinExpr.coerce(other)
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self._coeffs == other._coeffs and self._const == other._const

    def __hash__(self) -> int:
        return hash((frozenset(self._coeffs.items()), self._const))

    # -- display ------------------------------------------------------------------

    def __str__(self) -> str:
        parts: list[str] = []
        for name in sorted(self._coeffs):
            coeff = self._coeffs[name]
            if coeff == Poly.const(1):
                body = name
            elif coeff == Poly.const(-1):
                body = f"-{name}"
            elif coeff.is_constant() or coeff.is_single_term():
                body = f"{coeff}*{name}"
            else:
                body = f"({coeff})*{name}"
            if not parts:
                parts.append(body)
            elif body.startswith("-"):
                parts.append(f"- {body[1:]}")
            else:
                parts.append(f"+ {body}")
        if not self._const.is_zero() or not parts:
            const_str = str(self._const)
            if not parts:
                parts.append(const_str)
            elif const_str.startswith("-"):
                parts.append(f"- {const_str[1:]}")
            else:
                parts.append(f"+ {const_str}")
        return " ".join(parts)

    def __repr__(self) -> str:
        return f"LinExpr({self})"


def linear_combination(pairs: Iterable[tuple[PolyLike, LinExpr]]) -> LinExpr:
    """Sum of ``factor * expr`` products."""
    acc = LinExpr()
    for factor, expr in pairs:
        acc = acc + expr * Poly.coerce(factor)
    return acc
