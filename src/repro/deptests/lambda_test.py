"""The lambda-test [LYZ89] for coupled multi-dimensional subscripts.

Li, Yew and Zhu observed that for a *system* of dependence equations (one
per array dimension), testing each equation separately (as GCD/Banerjee do)
ignores the coupling between dimensions: the system is infeasible iff the
intersection of the hyperplanes misses the bounds box, and that can be
detected by applying Banerjee bounds to suitable *linear combinations*

    sum_i lambda_i * eq_i

of the equations.  The full test enumerates a canonical finite set of
lambda vectors; this implementation uses the practically-important subset:

* every single equation (lambda = unit vectors), and
* for every pair of equations, the combinations that eliminate one shared
  variable (these are the combinations whose Banerjee bounds can expose a
  coupled infeasibility that no single equation shows).

Each combination is checked with the GCD and Banerjee tests; any failing
combination proves independence (a solution of the system satisfies every
linear combination of its equations).  On a single-equation problem the
test degenerates to GCD+Banerjee — which is why, like them, it cannot
disprove the paper's intro equation (1).
"""

from __future__ import annotations

from itertools import combinations

from ..symbolic import LinExpr
from .banerjee import equation_banerjee_verdict
from .gcd import equation_gcd_verdict
from .problem import DependenceProblem, Verdict


def lambda_test(problem: DependenceProblem) -> Verdict:
    if not problem.is_concrete():
        return Verdict.MAYBE
    for combined in lambda_combinations(problem.equations):
        if equation_gcd_verdict(combined) is Verdict.INDEPENDENT:
            return Verdict.INDEPENDENT
        if (
            equation_banerjee_verdict(
                combined, problem.variables, problem.assumptions
            )
            is Verdict.INDEPENDENT
        ):
            return Verdict.INDEPENDENT
    return Verdict.MAYBE


def lambda_combinations(equations: list[LinExpr]) -> list[LinExpr]:
    """The base equations plus pairwise variable-eliminating combinations."""
    out = list(equations)
    for first, second in combinations(equations, 2):
        shared = first.variables() & second.variables()
        for name in sorted(shared):
            c1 = first.coeff(name).as_int()
            c2 = second.coeff(name).as_int()
            if c1 == 0 or c2 == 0:
                continue
            # lambda = (c2, -c1) eliminates ``name``; normalize the sign so
            # combinations are deterministic.
            combined = first * c2 - second * c1
            if combined.is_zero():
                continue
            out.append(combined)
    return out
