"""The registry of dependence tests, for comparisons and benchmarks.

This powers experiment E4 (the paper's intro comparison): which techniques
can prove the references ``C(i+10*j)`` and ``C(i+10*j+5)`` independent.
"""

from __future__ import annotations

from typing import Callable

from .acyclic import acyclic_test
from .banerjee import banerjee_test, gcd_banerjee_test
from .exhaustive import exhaustive_test
from .fourier_motzkin import fourier_motzkin_test
from .gcd import gcd_test
from .gcd_system import generalized_gcd_test
from .lambda_test import lambda_test
from .loop_residue import shostak_test, simple_loop_residue_test
from .omega import omega_test
from .problem import DependenceProblem, Verdict
from .svpc import svpc_test

TestFn = Callable[[DependenceProblem], Verdict]

#: The classical tests the paper compares against, keyed by its names.
CLASSICAL_TESTS: dict[str, TestFn] = {
    "GCD test": gcd_test,
    "Generalized GCD (system)": generalized_gcd_test,
    "Banerjee inequalities": banerjee_test,
    "Lambda test": lambda_test,
    "Single Variable Per Constraint": svpc_test,
    "Acyclic test": acyclic_test,
    "Simple Loop Residue": simple_loop_residue_test,
    "Shostak loop residues": shostak_test,
    "Fourier-Motzkin (real)": lambda p: fourier_motzkin_test(p, tighten=False),
    "Fourier-Motzkin + tightening": lambda p: fourier_motzkin_test(
        p, tighten=True
    ),
}

#: Exact integer deciders beyond the paper's comparison set.
EXTENDED_TESTS: dict[str, TestFn] = {
    "Omega (exact integer)": omega_test,
}


def run_all(
    problem: DependenceProblem,
    include_exhaustive: bool = False,
    include_extended: bool = False,
) -> dict[str, Verdict]:
    """Run every registered test on the problem."""
    results = {name: test(problem) for name, test in CLASSICAL_TESTS.items()}
    if include_extended:
        for name, test in EXTENDED_TESTS.items():
            results[name] = test(problem)
    if include_exhaustive:
        results["Exhaustive (ground truth)"] = exhaustive_test(problem)
    return results


def disproving_tests(problem: DependenceProblem) -> list[str]:
    """Names of the tests that prove the problem independent."""
    return [
        name
        for name, verdict in run_all(problem).items()
        if verdict is Verdict.INDEPENDENT
    ]


__all__ = [
    "CLASSICAL_TESTS",
    "EXTENDED_TESTS",
    "TestFn",
    "disproving_tests",
    "run_all",
]
