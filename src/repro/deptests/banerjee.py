"""Banerjee inequalities [AK87, WB87].

For each equation the left-hand side ``c0 + sum(ck * zk)`` with
``zk in [0, Zk]`` ranges over the real interval

    [c0 + sum(ck^- * Zk),  c0 + sum(ck^+ * Zk)]

where ``c^+ = max(c, 0)`` and ``c^- = min(c, 0)``.  If 0 lies outside the
interval the equation (hence the dependence) is impossible.  The test is
exact over the *reals* for a single equation, which is precisely why it
cannot disprove the paper's intro equation (1): that equation has real
solutions but no integer ones.

Direction-vector constrained Banerjee bounds are obtained by running this
test on ``problem.with_direction(dirvec)`` — the substitution formulation is
algebraically identical to the textbook per-direction bound formulas.

Symbolic coefficients are supported when their signs are provable from the
problem's :class:`~repro.symbolic.assumptions.Assumptions`.
"""

from __future__ import annotations

from ..symbolic import Assumptions, LinExpr, Poly
from .problem import BoundedVar, DependenceProblem, Verdict


def banerjee_test(problem: DependenceProblem) -> Verdict:
    """Banerjee inequalities over every equation of the problem."""
    for equation in problem.equations:
        verdict = equation_banerjee_verdict(
            equation, problem.variables, problem.assumptions
        )
        if verdict is Verdict.INDEPENDENT:
            return Verdict.INDEPENDENT
    return Verdict.MAYBE


def equation_bounds(
    equation: LinExpr,
    variables: dict[str, BoundedVar],
    assumptions: Assumptions,
) -> tuple[Poly, Poly] | None:
    """The (lower, upper) range of the equation's left-hand side.

    Returns None when a coefficient's sign (or the sign of an upper bound)
    cannot be proven, making the extreme values unknown.
    """
    lower = equation.const
    upper = equation.const
    for name, coeff in equation.coeffs.items():
        bound = variables[name].upper
        if assumptions.is_nonneg(bound) is None:
            return None
        contribution = coeff * bound
        sign = assumptions.sign(coeff)
        if sign is None:
            return None
        if sign > 0:
            upper = upper + contribution
        elif sign < 0:
            lower = lower + contribution
    return lower, upper


def equation_banerjee_verdict(
    equation: LinExpr,
    variables: dict[str, BoundedVar],
    assumptions: Assumptions | None = None,
) -> Verdict:
    """Banerjee verdict for a single equation."""
    assumptions = assumptions or Assumptions.empty()
    bounds = equation_bounds(equation, variables, assumptions)
    if bounds is None:
        return Verdict.MAYBE
    lower, upper = bounds
    if assumptions.is_pos(lower) or assumptions.is_neg(upper):
        return Verdict.INDEPENDENT
    return Verdict.MAYBE


def gcd_banerjee_test(problem: DependenceProblem) -> Verdict:
    """GCD test and Banerjee inequalities combined.

    This is the precision the paper proves its algorithm achieves "on the
    fly" for each separated dimension.
    """
    from .gcd import gcd_test

    if gcd_test(problem) is Verdict.INDEPENDENT:
        return Verdict.INDEPENDENT
    return banerjee_test(problem)
