"""Classical dependence tests (the baselines the paper compares against).

All tests share the :class:`~repro.deptests.problem.DependenceProblem`
representation and return a :class:`~repro.deptests.problem.Verdict`:

* ``INDEPENDENT`` — proven: no integer solution, no dependence;
* ``DEPENDENT``   — proven: an integer solution exists;
* ``MAYBE``       — the test cannot decide (treated as dependent by a
  conservative compiler).
"""

from .acyclic import acyclic_test
from .banerjee import (
    banerjee_test,
    equation_banerjee_verdict,
    equation_bounds,
    gcd_banerjee_test,
)
from .exhaustive import (
    TooLarge,
    exhaustive_direction_vectors,
    exhaustive_distance_vectors,
    exhaustive_test,
)
from .fourier_motzkin import fourier_motzkin_test
from .gcd import equation_gcd_verdict, gcd_test
from .gcd_system import diophantine_solvable, generalized_gcd_test
from .lambda_test import lambda_combinations, lambda_test
from .loop_residue import shostak_test, simple_loop_residue_test
from .omega import omega_test
from .problem import BoundedVar, DependenceProblem, Verdict
from .suite import CLASSICAL_TESTS, EXTENDED_TESTS, disproving_tests, run_all
from .svpc import svpc_test

__all__ = [
    "BoundedVar",
    "CLASSICAL_TESTS",
    "DependenceProblem",
    "EXTENDED_TESTS",
    "TooLarge",
    "Verdict",
    "acyclic_test",
    "banerjee_test",
    "diophantine_solvable",
    "disproving_tests",
    "equation_banerjee_verdict",
    "equation_bounds",
    "equation_gcd_verdict",
    "exhaustive_direction_vectors",
    "exhaustive_distance_vectors",
    "exhaustive_test",
    "fourier_motzkin_test",
    "gcd_banerjee_test",
    "gcd_test",
    "generalized_gcd_test",
    "lambda_combinations",
    "lambda_test",
    "omega_test",
    "run_all",
    "shostak_test",
    "simple_loop_residue_test",
    "svpc_test",
]
