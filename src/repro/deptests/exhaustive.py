"""Exhaustive integer enumeration: the ground-truth oracle.

Dependence testing is integer programming; on the small iteration spaces of
the paper's examples (and of generated test cases) we can simply enumerate.
Every other test's soundness is property-checked against this module.
"""

from __future__ import annotations

from ..core.chaos import chaos_point
from ..core.resilience import Budget
from ..dirvec.vectors import DirVec, DistanceElem, DistanceVec
from .problem import DependenceProblem, Verdict


class TooLarge(Exception):
    """The iteration space exceeds the enumeration budget.

    Only the raw vector-enumeration oracles raise this (their callers
    pre-check sizes); the :class:`Verdict`-valued :func:`exhaustive_test`
    answers MAYBE instead, like every other budgeted dependence test.
    """


def exhaustive_test(
    problem: DependenceProblem,
    max_points: int = 2_000_000,
    budget: Budget | None = None,
) -> Verdict:
    """Exact INDEPENDENT/DEPENDENT by enumeration (concrete problems only).

    An iteration space larger than the budget answers MAYBE — never raises.
    A caller-supplied ``budget`` (shared across a pair's test cascade)
    overrides ``max_points`` and is charged for the whole enumeration.
    """
    chaos_point("deptest.exhaustive")
    if not problem.is_concrete():
        return Verdict.MAYBE
    if budget is None:
        budget = Budget(steps=max_points, label="exhaustive enumeration")
    count = problem.iteration_count()
    if not budget.covers(count):
        return Verdict.MAYBE
    budget.spend(count)
    for _ in problem.enumerate_solutions():
        return Verdict.DEPENDENT
    return Verdict.INDEPENDENT


def exhaustive_direction_vectors(
    problem: DependenceProblem, max_points: int = 2_000_000
) -> set[DirVec]:
    """The exact set of atomic direction vectors realized by solutions."""
    _check_size(problem, max_points)
    out: set[DirVec] = set()
    for solution in problem.enumerate_solutions():
        out.add(problem.direction_of_solution(solution))
    return out


def exhaustive_distance_vectors(
    problem: DependenceProblem, max_points: int = 2_000_000
) -> DistanceVec | None:
    """The exact distance-direction vector summary, or None when independent.

    Each level gets an exact distance when all solutions agree on
    ``beta - alpha`` (sink minus source) and a direction element otherwise.
    """
    _check_size(problem, max_points)
    distances: list[set[int]] = [set() for _ in range(problem.common_levels)]
    directions: set[DirVec] = set()
    found = False
    for solution in problem.enumerate_solutions():
        found = True
        directions.add(problem.direction_of_solution(solution))
        for index, (alpha, beta) in enumerate(problem.level_pairs()):
            distances[index].add(solution[beta.name] - solution[alpha.name])
    if not found:
        return None
    elements = []
    for index in range(problem.common_levels):
        values = distances[index]
        if len(values) == 1:
            elements.append(DistanceElem.exact(next(iter(values))))
        else:
            merged = None
            for vec in directions:
                merged = vec[index] if merged is None else (merged | vec[index])
            elements.append(DistanceElem.unknown(merged))
    return DistanceVec(elements)


def _check_size(problem: DependenceProblem, max_points: int) -> None:
    count = problem.iteration_count()
    if count > max_points:
        raise TooLarge(
            f"{count} points exceed the enumeration budget of {max_points}"
        )
