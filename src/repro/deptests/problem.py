"""The dependence problem representation shared by all tests.

A :class:`DependenceProblem` is the constrained system of the paper's
equation (2)/(5): a conjunction of linear equations over iteration variables
``z_k`` in normalized ranges ``[0, Z_k]``, together with the bookkeeping that
maps variables back to (loop level, reference side) so direction vectors can
be reported.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from itertools import product as _iterproduct
from typing import Iterator, Mapping, Sequence

from ..dirvec.vectors import D_EQ, D_GT, D_LT, DirElem, DirVec
from ..symbolic import Assumptions, LinExpr, Poly, PolyLike


class Verdict(Enum):
    """Outcome of a dependence test."""

    INDEPENDENT = "independent"
    DEPENDENT = "dependent"
    MAYBE = "maybe"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class BoundedVar:
    """An iteration variable with normalized range ``[0, upper]``.

    ``level`` is the 1-based loop level and ``side`` identifies which of the
    two references the variable belongs to (0 = first, 1 = second).  Both are
    None for auxiliary variables introduced by transformations.
    """

    name: str
    upper: Poly
    level: int | None = None
    side: int | None = None

    @classmethod
    def make(
        cls,
        name: str,
        upper: PolyLike,
        level: int | None = None,
        side: int | None = None,
    ) -> "BoundedVar":
        return cls(name, Poly.coerce(upper), level, side)

    def __str__(self) -> str:
        return f"{self.name} in [0, {self.upper}]"


class DependenceProblem:
    """A conjunction of linear dependence equations with bounded variables."""

    def __init__(
        self,
        equations: Sequence[LinExpr],
        variables: Sequence[BoundedVar],
        common_levels: int = 0,
        assumptions: Assumptions | None = None,
    ):
        self.equations = list(equations)
        self.variables: dict[str, BoundedVar] = {}
        for var in variables:
            if var.name in self.variables:
                raise ValueError(f"duplicate variable {var.name}")
            self.variables[var.name] = var
        self.common_levels = common_levels
        self.assumptions = assumptions or Assumptions.empty()
        for eq in self.equations:
            missing = eq.variables() - set(self.variables)
            if missing:
                raise ValueError(f"equation {eq} uses unbound {sorted(missing)}")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def single(
        cls,
        coefficients: Mapping[str, int],
        constant: int,
        bounds: Mapping[str, int],
        common_levels: int = 0,
        pairs: Sequence[tuple[str, str]] = (),
    ) -> "DependenceProblem":
        """Build a one-equation problem from plain integers.

        ``pairs`` optionally lists ``(side0_var, side1_var)`` per common
        level, in order, to enable direction-vector queries.
        """
        expr = LinExpr(dict(coefficients), constant)
        variables = []
        pair_index: dict[str, tuple[int, int]] = {}
        for level, (a, b) in enumerate(pairs, start=1):
            pair_index[a] = (level, 0)
            pair_index[b] = (level, 1)
        for name, upper in bounds.items():
            level, side = pair_index.get(name, (None, None))
            variables.append(BoundedVar.make(name, upper, level, side))
        return cls([expr], variables, common_levels=len(pairs) or common_levels)

    # -- inspection ----------------------------------------------------------

    def is_concrete(self) -> bool:
        """True when all coefficients, constants and bounds are integers."""
        return all(eq.is_integer_concrete() for eq in self.equations) and all(
            v.upper.is_constant() for v in self.variables.values()
        )

    def var_names(self) -> list[str]:
        return list(self.variables)

    def level_pair(self, level: int) -> tuple[BoundedVar, BoundedVar] | None:
        """The (side-0, side-1) variables of a common loop level."""
        first = second = None
        for var in self.variables.values():
            if var.level == level:
                if var.side == 0:
                    first = var
                elif var.side == 1:
                    second = var
        if first is None or second is None:
            return None
        return first, second

    def level_pairs(self) -> list[tuple[BoundedVar, BoundedVar]]:
        out = []
        for level in range(1, self.common_levels + 1):
            pair = self.level_pair(level)
            if pair is None:
                raise ValueError(f"common level {level} has no variable pair")
            out.append(pair)
        return out

    def iteration_count(self) -> int:
        """Number of integer points in the (concrete) bound box."""
        total = 1
        for var in self.variables.values():
            upper = var.upper.as_int()
            if upper < 0:
                return 0
            total *= upper + 1
        return total

    # -- evaluation -----------------------------------------------------------

    def is_solution(
        self,
        assignment: Mapping[str, int],
        sym_values: Mapping[str, int] | None = None,
    ) -> bool:
        """Check a candidate integer assignment against equations and bounds."""
        for var in self.variables.values():
            value = assignment[var.name]
            if not 0 <= value <= var.upper.evaluate(sym_values or {}):
                return False
        return all(
            eq.evaluate(assignment, sym_values) == 0 for eq in self.equations
        )

    def enumerate_solutions(
        self, sym_values: Mapping[str, int] | None = None
    ) -> Iterator[dict[str, int]]:
        """Brute-force enumeration (concrete problems; use with care)."""
        sym_values = sym_values or {}
        names = list(self.variables)
        ranges = [
            range(self.variables[n].upper.evaluate(sym_values) + 1) for n in names
        ]
        for point in _iterproduct(*ranges):
            assignment = dict(zip(names, point))
            if all(
                eq.evaluate(assignment, sym_values) == 0 for eq in self.equations
            ):
                yield assignment

    # -- transformations ---------------------------------------------------------

    def with_direction(self, dirvec: DirVec) -> "DependenceProblem":
        """Constrain the problem to an (atomic or composite) direction vector.

        Implemented by variable substitution, which reduces the
        direction-constrained Banerjee bounds to the plain ones:

        * ``=``: the side-1 variable is replaced by the side-0 variable;
        * ``<`` (alpha < beta): ``beta := alpha + 1 + t`` with fresh
          ``t in [0, Z-1]`` and ``alpha in [0, Z-1]``;
        * ``>``: symmetric;
        * composite elements (``*``, ``<=`` ...) leave the level unconstrained.
        """
        if len(dirvec) != self.common_levels:
            raise ValueError(
                f"direction vector {dirvec} has {len(dirvec)} elements, "
                f"problem has {self.common_levels} common levels"
            )
        equations = list(self.equations)
        variables = dict(self.variables)
        for level, elem in enumerate(dirvec, start=1):
            pair = self.level_pair(level)
            if pair is None:
                raise ValueError(f"level {level} has no variable pair")
            alpha, beta = pair
            if elem == D_EQ:
                equations = [
                    eq.substitute_var(beta.name, LinExpr.var(alpha.name))
                    for eq in equations
                ]
                variables.pop(beta.name, None)
                # Shared range: the tighter of the two upper bounds if they
                # differ (they normally agree: same loop).
                shared = alpha.upper
                if alpha.upper.is_constant() and beta.upper.is_constant():
                    if beta.upper.as_int() < alpha.upper.as_int():
                        shared = beta.upper
                variables[alpha.name] = replace(
                    variables[alpha.name], upper=shared
                )
            elif elem in (D_LT, D_GT):
                lo, hi = (alpha, beta) if elem == D_LT else (beta, alpha)
                # hi := lo + 1 + t with t in [0, Z_hi - 1] and
                # lo in [0, min(Z_lo, Z_hi - 1)].  The coupling constraint
                # lo + t <= Z_hi - 1 is not box-representable and is dropped:
                # this is the rectangular over-approximation the paper's
                # footnote 1 adopts (sound: it can only add points).
                t_name = f"_t{level}"
                while t_name in variables:
                    t_name += "_"
                replacement = LinExpr.var(lo.name) + LinExpr.var(t_name) + 1
                equations = [
                    eq.substitute_var(hi.name, replacement) for eq in equations
                ]
                variables.pop(hi.name, None)
                lo_upper = hi.upper - 1
                if lo.upper.is_constant() and hi.upper.is_constant():
                    lo_upper = Poly.const(
                        min(lo.upper.as_int(), hi.upper.as_int() - 1)
                    )
                elif lo.upper != hi.upper:
                    # Distinct symbolic bounds: keep the declared bound (a
                    # further over-approximation, still sound).
                    lo_upper = lo.upper
                variables[lo.name] = replace(
                    variables[lo.name], upper=lo_upper
                )
                variables[t_name] = BoundedVar(t_name, hi.upper - 1)
            # Composite elements: no constraint added.
        # Every variable is kept: a variable whose transformed range is
        # empty (upper < 0) makes the whole problem infeasible even when it
        # no longer appears in any equation.
        return DependenceProblem(
            equations, list(variables.values()), self.common_levels, self.assumptions
        )

    def direction_of_solution(self, assignment: Mapping[str, int]) -> DirVec:
        """The atomic direction vector realized by a solution point."""
        elems: list[DirElem] = []
        for alpha, beta in self.level_pairs():
            a_val = assignment[alpha.name]
            b_val = assignment[beta.name]
            if a_val < b_val:
                elems.append(D_LT)
            elif a_val == b_val:
                elems.append(D_EQ)
            else:
                elems.append(D_GT)
        return DirVec(elems)

    def restrict_to_equation(self, index: int) -> "DependenceProblem":
        """A sub-problem containing a single equation (with its variables)."""
        eq = self.equations[index]
        kept = [self.variables[name] for name in self.variables if name in eq.variables()]
        return DependenceProblem([eq], kept, self.common_levels, self.assumptions)

    def __str__(self) -> str:
        eqs = "; ".join(f"{eq} = 0" for eq in self.equations)
        bounds = ", ".join(str(v) for v in self.variables.values())
        return f"{eqs} with {bounds}"

    def __repr__(self) -> str:
        return f"DependenceProblem({self})"
