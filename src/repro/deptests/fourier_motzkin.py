"""Fourier-Motzkin elimination [DE73, MHL91], with optional Pugh tightening.

The problem's equations and bounds become a system of integer-coefficient
inequalities ``sum(a_i * z_i) <= c``; variables are eliminated one at a time
by combining every lower bound with every upper bound.  An inconsistent
constant constraint (``0 <= c`` with ``c < 0``) proves independence.

Plain FM decides *real* feasibility, so — like Banerjee — it cannot disprove
the paper's intro equation (1).  With ``tighten=True`` every inequality is
normalized the way Pugh's Omega test does [Pug91]: divide by the gcd of the
variable coefficients and floor the constant.  That normalization is sound
only over the integers and is exactly the step the paper credits with making
FM able to return "independent" on equation (1).

Cost control: elimination can square the constraint count, so the routine
gives up (MAYBE) beyond ``max_constraints``.
"""

from __future__ import annotations

import math
from typing import Iterable

from .problem import DependenceProblem, Verdict

#: One inequality: (coeffs, c) meaning sum(coeffs[v] * v) <= c.
Inequality = tuple[tuple[tuple[str, int], ...], int]


def fourier_motzkin_test(
    problem: DependenceProblem,
    tighten: bool = False,
    max_constraints: int = 20000,
) -> Verdict:
    """Eliminate all variables; INDEPENDENT on derived contradiction."""
    if not problem.is_concrete():
        return Verdict.MAYBE
    system: set[Inequality] = set()
    for eq in problem.equations:
        coeffs = {n: c.as_int() for n, c in eq.coeffs.items()}
        constant = eq.const.as_int()
        for sign in (1, -1):
            ineq = _normalize(
                {n: sign * c for n, c in coeffs.items()}, -sign * constant, tighten
            )
            if ineq is None:
                return Verdict.INDEPENDENT
            if ineq:
                system.add(ineq)
    for name, var in problem.variables.items():
        upper = var.upper.as_int()
        for coeffs, bound in (({name: 1}, upper), ({name: -1}, 0)):
            ineq = _normalize(coeffs, bound, tighten)
            if ineq is None:
                return Verdict.INDEPENDENT
            if ineq:
                system.add(ineq)

    remaining = set(problem.variables)
    while remaining:
        variable = _cheapest_variable(system, remaining)
        remaining.discard(variable)
        lowers, uppers, others = _partition(system, variable)
        if len(lowers) * len(uppers) + len(others) > max_constraints:
            return Verdict.MAYBE
        system = set(others)
        for lower in lowers:
            for upper in uppers:
                derived = _eliminate(lower, upper, variable, tighten)
                if derived is None:
                    return Verdict.INDEPENDENT
                if derived:
                    system.add(derived)
    return Verdict.MAYBE


def _normalize(
    coeffs: dict[str, int], bound: int, tighten: bool
) -> Inequality | None | tuple[()]:
    """Canonicalize an inequality.

    Returns None for a contradiction (``0 <= negative``), the empty tuple for
    a trivially true constraint, or the normalized inequality.
    """
    live = {n: c for n, c in coeffs.items() if c}
    if not live:
        return None if bound < 0 else ()
    if tighten:
        gcd = math.gcd(*(abs(c) for c in live.values()))
        if gcd > 1:
            live = {n: c // gcd for n, c in live.items()}
            bound = _floor_div(bound, gcd)
    return tuple(sorted(live.items())), bound


def _partition(
    system: Iterable[Inequality], variable: str
) -> tuple[list[Inequality], list[Inequality], list[Inequality]]:
    lowers, uppers, others = [], [], []
    for ineq in system:
        coeff = dict(ineq[0]).get(variable, 0)
        if coeff > 0:
            uppers.append(ineq)  # a*v <= ...  bounds v from above
        elif coeff < 0:
            lowers.append(ineq)
        else:
            others.append(ineq)
    return lowers, uppers, others


def _eliminate(
    lower: Inequality, upper: Inequality, variable: str, tighten: bool
) -> Inequality | None | tuple[()]:
    """Combine one lower and one upper bound on ``variable``."""
    lower_map, lower_bound = dict(lower[0]), lower[1]
    upper_map, upper_bound = dict(upper[0]), upper[1]
    scale_lower = upper_map[variable]  # > 0
    scale_upper = -lower_map[variable]  # > 0
    merged: dict[str, int] = {}
    for n, c in lower_map.items():
        merged[n] = merged.get(n, 0) + c * scale_lower
    for n, c in upper_map.items():
        merged[n] = merged.get(n, 0) + c * scale_upper
    merged.pop(variable, None)
    return _normalize(
        merged, lower_bound * scale_lower + upper_bound * scale_upper, tighten
    )


def _cheapest_variable(system: set[Inequality], remaining: set[str]) -> str:
    """Pick the elimination variable minimizing new-constraint count."""
    best, best_cost = None, None
    for variable in sorted(remaining):
        lowers = uppers = 0
        for coeffs, _ in system:
            coeff = dict(coeffs).get(variable, 0)
            if coeff > 0:
                uppers += 1
            elif coeff < 0:
                lowers += 1
        cost = lowers * uppers - lowers - uppers
        if best_cost is None or cost < best_cost:
            best, best_cost = variable, cost
    assert best is not None
    return best


def _floor_div(a: int, b: int) -> int:
    return a // b
