"""An acyclic / constraint-propagation test in the spirit of [MHL91].

Maydan, Hennessy and Lam's acyclic test solves sparse dependence systems
whose constraint graph is a forest by eliminating variables from the leaves
inward, carrying value ranges.  We implement the propagation engine in its
natural general form: every variable carries an interval ``[lo, hi]`` and a
congruence ``value ≡ residue (mod modulus)``, and each equation repeatedly
tightens each of its variables from the others' state.

* an emptied interval or unsatisfiable congruence proves INDEPENDENT;
* when every variable is pinned to a single value, the point is verified
  and the test answers exactly (DEPENDENT / INDEPENDENT);
* otherwise MAYBE.

On acyclic (forest) systems with unit coefficients the propagation reaches
the same conclusions as the original test; on the paper's intro equation (1)
it makes no progress — all four variables share one equation with mixed
coefficient magnitudes — which is exactly the paper's point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.chaos import chaos_point
from ..core.resilience import Budget
from .problem import DependenceProblem, Verdict

_MAX_ROUNDS = 64


@dataclass
class _VarState:
    lo: int
    hi: int
    residue: int = 0
    modulus: int = 1

    def pinned(self) -> bool:
        return self.lo == self.hi

    def tighten_interval(self, lo: int, hi: int) -> bool:
        """Intersect; returns True when something changed."""
        new_lo, new_hi = max(self.lo, lo), min(self.hi, hi)
        changed = (new_lo, new_hi) != (self.lo, self.hi)
        self.lo, self.hi = new_lo, new_hi
        return changed

    def tighten_congruence(self, residue: int, modulus: int) -> bool | None:
        """CRT-merge a congruence; None signals inconsistency."""
        if modulus <= 1:
            return False
        gcd = math.gcd(self.modulus, modulus)
        if (residue - self.residue) % gcd != 0:
            return None
        lcm = self.modulus // gcd * modulus
        if lcm == self.modulus:
            return False
        # Solve x ≡ self.residue (mod self.modulus), x ≡ residue (mod modulus).
        step = self.modulus
        value = self.residue
        while value % modulus != residue % modulus:
            value += step
        self.residue = value % lcm
        self.modulus = lcm
        return True

    def align_interval_to_congruence(self) -> bool:
        """Shrink [lo, hi] to the smallest/largest admissible residues."""
        if self.modulus == 1:
            return False
        lo = self.lo + ((self.residue - self.lo) % self.modulus)
        hi = self.hi - ((self.hi - self.residue) % self.modulus)
        changed = (lo, hi) != (self.lo, self.hi)
        self.lo, self.hi = lo, hi
        return changed

    def feasible(self) -> bool:
        return self.lo <= self.hi


def acyclic_test(
    problem: DependenceProblem, budget: Budget | None = None
) -> Verdict:
    chaos_point("deptest.acyclic")
    if not problem.is_concrete():
        return Verdict.MAYBE
    if not _is_acyclic(problem):
        return Verdict.MAYBE
    if budget is None:
        budget = Budget(steps=_MAX_ROUNDS, label="acyclic propagation")
    state = {
        name: _VarState(0, var.upper.as_int())
        for name, var in problem.variables.items()
    }
    if any(not s.feasible() for s in state.values()):
        return Verdict.INDEPENDENT

    equations = [
        (
            {name: coeff.as_int() for name, coeff in eq.coeffs.items()},
            eq.const.as_int(),
        )
        for eq in problem.equations
    ]

    # Each propagation round costs one budget step; running out of budget
    # just stops tightening early, which is sound (the pinned check below
    # still verifies any fully-determined point before answering exactly).
    while budget.spend():
        changed = False
        for coeffs, constant in equations:
            if not coeffs:
                if constant != 0:
                    return Verdict.INDEPENDENT
                continue
            for target in coeffs:
                result = _tighten(target, coeffs, constant, state)
                if result is None:
                    return Verdict.INDEPENDENT
                changed |= result
        if not changed:
            break

    if all(s.pinned() for s in state.values()):
        point = {name: s.lo for name, s in state.items()}
        if problem.is_solution(point):
            return Verdict.DEPENDENT
        return Verdict.INDEPENDENT
    return Verdict.MAYBE


def _is_acyclic(problem: DependenceProblem) -> bool:
    """Applicability gate: the variable-interaction graph must be a forest.

    Every equation connects all of its variables pairwise; an equation with
    three or more variables therefore forms a cycle outright, and two
    equations linking the same pair of variables do too.  This is the
    restriction that keeps the original test cheap — and the reason it
    cannot handle the paper's intro equation (1), whose single equation
    couples four variables.
    """
    parent: dict[str, str] = {name: name for name in problem.variables}

    def find(node: str) -> str:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    for equation in problem.equations:
        names = sorted(equation.variables())
        if len(names) >= 3:
            return False
        if len(names) == 2:
            root_a, root_b = find(names[0]), find(names[1])
            if root_a == root_b:
                return False
            parent[root_a] = root_b
    return True


def _tighten(
    target: str,
    coeffs: dict[str, int],
    constant: int,
    state: dict[str, _VarState],
) -> bool | None:
    """Tighten one variable from one equation; None signals infeasibility."""
    a = coeffs[target]
    # Range of rhs = -(constant + sum of other terms).
    rhs_lo = rhs_hi = -constant
    other_gcd = 0
    other_residue = 0
    for name, coeff in coeffs.items():
        if name == target:
            continue
        var = state[name]
        lo_term = min(coeff * var.lo, coeff * var.hi)
        hi_term = max(coeff * var.lo, coeff * var.hi)
        rhs_lo -= hi_term
        rhs_hi -= lo_term
        other_gcd = math.gcd(other_gcd, abs(coeff) * var.modulus)
        other_residue += coeff * var.residue

    changed = False
    var = state[target]

    # Interval: a * x in [rhs_lo, rhs_hi], so for a > 0
    # x in [ceil(rhs_lo / a), floor(rhs_hi / a)] and the ends swap for a < 0.
    lo = _ceil_div(rhs_lo, a) if a > 0 else _ceil_div(rhs_hi, a)
    hi = _floor_div(rhs_hi, a) if a > 0 else _floor_div(rhs_lo, a)
    changed |= var.tighten_interval(lo, hi)
    if not var.feasible():
        return None

    # Congruence: a*x ≡ -(constant + other_residue) (mod other_gcd).
    if other_gcd > 1 or (not any(n != target for n in coeffs)):
        modulus = other_gcd if other_gcd else 0
        b = -(constant + other_residue)
        if modulus == 0:
            # x is the only variable: a*x = b exactly.
            if b % a != 0:
                return None
            value = b // a
            changed |= var.tighten_interval(value, value)
            if not var.feasible():
                return None
        else:
            d = math.gcd(abs(a), modulus)
            if b % d != 0:
                return None
            reduced_mod = modulus // d
            if reduced_mod > 1:
                inv = pow((a // d) % reduced_mod, -1, reduced_mod)
                residue = ((b // d) % reduced_mod) * inv % reduced_mod
                merged = var.tighten_congruence(residue, reduced_mod)
                if merged is None:
                    return None
                changed |= merged
    aligned = var.align_interval_to_congruence()
    changed |= aligned
    if not var.feasible():
        return None
    return changed


def _floor_div(a: int, b: int) -> int:
    return a // b


def _ceil_div(a: int, b: int) -> int:
    return -((-a) // b)
