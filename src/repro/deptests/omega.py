"""An Omega-style exact integer feasibility test [Pug91].

The paper credits "normalization (tightening) of constraints proposed in
[Pug91] together with Fourier-Motzkin elimination" with disproving its intro
equation, while recommending delinearization as the cheap alternative.  This
module implements the core of Pugh's Omega test so the comparison can be
made against the real thing:

* **equality elimination** — unit-coefficient substitution, with Pugh's
  symmetric-modulo variable introduction when no unit coefficient exists
  (coefficients shrink geometrically, so this terminates);
* **Fourier-Motzkin with shadows** — when eliminating a variable between a
  lower bound ``a*x >= -r1`` and an upper bound ``b*x <= r2``:
  the *real shadow* ``a*r2 + b*r1 >= 0`` is necessary; the *dark shadow*
  ``a*r2 + b*r1 >= (a-1)*(b-1)`` is sufficient; they coincide when
  ``a == 1 or b == 1`` (exact elimination);
* **splintering** — in the gray zone between the shadows, exactness is
  recovered by case-splitting a largest-coefficient lower bound into
  finitely many equalities.

The test is *exact* (returns INDEPENDENT or DEPENDENT) unless the work cap
is hit, in which case it reports MAYBE.  Soundness of both definite answers
is property-tested against exhaustive enumeration.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import count

from ..core.chaos import chaos_point
from ..core.resilience import Budget
from .problem import DependenceProblem, Verdict

#: Affine constraint over variable names: coeffs + const, either ">= 0" or "== 0".
Coeffs = dict[str, int]

#: Global sigma counter: sub-systems spawned during splintering share the
#: constraint variables of their parent, so fresh names must be globally
#: unique (a per-system counter would collide and silently merge variables).
_SIGMA_COUNTER = count(1)


@dataclass
class _System:
    equalities: list[tuple[Coeffs, int]] = field(default_factory=list)
    inequalities: list[tuple[Coeffs, int]] = field(default_factory=list)

    def fresh(self) -> str:
        return f"_sigma{next(_SIGMA_COUNTER)}"


#: Hard limit on splinter/recursion depth (Python stack safety).
_MAX_DEPTH = 40


def omega_test(
    problem: DependenceProblem,
    work_limit: int = 60_000,
    budget: Budget | None = None,
) -> Verdict:
    """Exact integer (in)feasibility of the dependence system.

    A caller-supplied ``budget`` (shared across a dependence pair's whole
    test cascade) overrides ``work_limit``; exhaustion answers MAYBE.
    """
    chaos_point("deptest.omega")
    if not problem.is_concrete():
        return Verdict.MAYBE
    if budget is None:
        budget = Budget(steps=work_limit, label="omega")
    if budget.max_depth is None:
        budget.max_depth = _MAX_DEPTH
    system = _System()
    for eq in problem.equations:
        coeffs = {n: c.as_int() for n, c in eq.coeffs.items()}
        system.equalities.append((coeffs, eq.const.as_int()))
    for name, var in problem.variables.items():
        upper = var.upper.as_int()
        system.inequalities.append(({name: 1}, 0))  # x >= 0
        system.inequalities.append(({name: -1}, upper))  # upper - x >= 0
    answer = _feasible(system, budget)
    if answer is None:
        return Verdict.MAYBE
    return Verdict.DEPENDENT if answer else Verdict.INDEPENDENT


# -- the solver -----------------------------------------------------------------


def _feasible(system: _System, budget: Budget) -> bool | None:
    """True / False exactly, None when the budget runs out."""
    if not budget.spend():
        return None
    budget.depth += 1
    try:
        state = _eliminate_equalities(system, budget)
        if state is not None:
            return state
        return _eliminate_inequalities(system, budget)
    finally:
        budget.depth -= 1


def _eliminate_equalities(system: _System, budget: Budget) -> bool | None:
    """Drain the equalities; returns False on contradiction, None to go on."""
    while system.equalities:
        if not budget.spend():
            return None
        coeffs, const = system.equalities.pop()
        coeffs = {n: c for n, c in coeffs.items() if c}
        if not coeffs:
            if const != 0:
                return False
            continue
        gcd = math.gcd(*(abs(c) for c in coeffs.values()))
        if const % gcd != 0:
            return False
        if gcd > 1:
            coeffs = {n: c // gcd for n, c in coeffs.items()}
            const //= gcd
        unit = next((n for n, c in coeffs.items() if abs(c) == 1), None)
        if unit is not None:
            _substitute(system, unit, coeffs, const)
            continue
        # Pugh's symmetric-mod reduction: introduce sigma, derive a unit
        # coefficient, substitute, and retry with the shrunken equality.
        smallest = min(coeffs.values(), key=abs)
        m = abs(smallest) + 1
        sigma = system.fresh()
        new_coeffs = {n: _symmetric_mod(c, m) for n, c in coeffs.items()}
        new_coeffs = {n: c for n, c in new_coeffs.items() if c}
        new_coeffs[sigma] = -m
        new_const = _symmetric_mod(const, m)
        # The variable with |coeff| == m-1 now has coefficient -+1.
        system.equalities.append((coeffs, const))
        unit = next(n for n, c in new_coeffs.items() if abs(c) == 1)
        _substitute(system, unit, new_coeffs, new_const)
    return None


def _substitute(
    system: _System, name: str, coeffs: Coeffs, const: int
) -> None:
    """Substitute ``name`` using equality ``coeffs . x + const == 0``.

    ``coeffs[name]`` must be +-1: then ``name = -s * (rest + const)`` with
    ``s = coeffs[name]``.
    """
    sign = coeffs[name]
    assert abs(sign) == 1
    rest = {n: -sign * c for n, c in coeffs.items() if n != name}
    rest_const = -sign * const

    def apply(target: Coeffs, target_const: int) -> tuple[Coeffs, int]:
        factor = target.pop(name, 0)
        if factor:
            for n, c in rest.items():
                target[n] = target.get(n, 0) + factor * c
            target_const += factor * rest_const
        return {n: c for n, c in target.items() if c}, target_const

    system.equalities = [
        apply(dict(c), k) for c, k in system.equalities
    ]
    system.inequalities = [
        apply(dict(c), k) for c, k in system.inequalities
    ]


def _symmetric_mod(a: int, b: int) -> int:
    """Pugh's mod-hat: residue in (-b/2, b/2]."""
    r = a - b * ((2 * a + b) // (2 * b))
    return r


def _eliminate_inequalities(system: _System, budget: Budget) -> bool | None:
    inequalities = _normalize_all(system.inequalities)
    if inequalities is None:
        return False
    while True:
        if not budget.spend():
            return None
        variables = sorted({n for c, _ in inequalities for n in c})
        if not variables:
            return True  # only satisfiable constant constraints remain
        name = _cheapest(inequalities, variables)
        lowers, uppers, rest = [], [], []
        for coeffs, const in inequalities:
            coefficient = coeffs.get(name, 0)
            if coefficient > 0:
                lowers.append((coeffs, const))
            elif coefficient < 0:
                uppers.append((coeffs, const))
            else:
                rest.append((coeffs, const))
        if not lowers or not uppers:
            # Unbounded in one direction: drop all constraints on the var.
            inequalities = rest
            continue
        if not budget.covers(len(lowers) * len(uppers)):
            return None
        exact = True
        dark_contradiction = False
        derived = list(rest)
        for lower_coeffs, lower_const in lowers:
            a = lower_coeffs[name]
            for upper_coeffs, upper_const in uppers:
                b = -upper_coeffs[name]
                merged: Coeffs = {}
                for n, c in lower_coeffs.items():
                    if n != name:
                        merged[n] = merged.get(n, 0) + b * c
                for n, c in upper_coeffs.items():
                    if n != name:
                        merged[n] = merged.get(n, 0) + a * c
                const = b * lower_const + a * upper_const
                pair_exact = a == 1 or b == 1
                if not pair_exact:
                    exact = False
                    # Dark shadow: demand a gap of (a-1)(b-1).
                    const -= (a - 1) * (b - 1)
                normalized = _normalize(merged, const)
                if normalized is False:
                    if pair_exact:
                        # The real shadow is already infeasible: exact.
                        return False
                    dark_contradiction = True
                elif normalized is not True:
                    derived.append(normalized)
        if exact:
            return _check(derived, budget)
        # Inexact elimination: dark-shadow feasibility proves feasibility.
        if not dark_contradiction:
            dark_feasible = _check(derived, budget)
            if dark_feasible is True:
                return True
            if dark_feasible is None:
                return None
        # Dark shadow infeasible: exact answer needs splintering over the
        # lower bounds of the eliminated variable.
        return _splinter(inequalities, name, lowers, uppers, budget)


def _check(
    inequalities: list[tuple[Coeffs, int]], budget: Budget
) -> bool | None:
    subsystem = _System([], [(dict(c), k) for c, k in inequalities])
    return _feasible(subsystem, budget)


def _splinter(
    inequalities: list[tuple[Coeffs, int]],
    name: str,
    lowers: list[tuple[Coeffs, int]],
    uppers: list[tuple[Coeffs, int]],
    budget: Budget,
) -> bool | None:
    """Pugh's splintering: case-split the lower bounds into equalities.

    When the dark shadow is empty, any integer solution must sit within
    ``(a*b_max - a - b_max) / b_max`` of *some* lower bound ``a*x >= -r1``;
    trying every (lower bound, offset) case as an added equality is exact.
    """
    max_b = max(-u[0][name] for u in uppers)
    for lower_coeffs, lower_const in lowers:
        a = lower_coeffs[name]
        span = (a * max_b - a - max_b) // max_b
        for offset in range(span + 1):
            if not budget.spend(10):
                return None
            case = _System()
            case.inequalities = [(dict(c), k) for c, k in inequalities]
            # a*x + r1 == offset (r1 is the affine rest of the lower bound).
            case.equalities.append((dict(lower_coeffs), lower_const - offset))
            result = _feasible(case, budget)
            if result is True:
                return True
            if result is None:
                return None
    return False


def _cheapest(
    inequalities: list[tuple[Coeffs, int]], variables: list[str]
) -> str:
    """Prefer exact eliminations (unit coefficients), then low fan-out."""
    best_name = variables[0]
    best_key: tuple[int, int] | None = None
    for name in variables:
        lowers = uppers = 0
        exact = 0
        for coeffs, _ in inequalities:
            c = coeffs.get(name, 0)
            if c > 0:
                lowers += 1
                exact |= int(c > 1)
            elif c < 0:
                uppers += 1
                exact |= int(c < -1)
        key = (exact, lowers * uppers)
        if best_key is None or key < best_key:
            best_key = key
            best_name = name
    return best_name


def _normalize_all(
    inequalities: list[tuple[Coeffs, int]]
) -> list[tuple[Coeffs, int]] | None:
    out = []
    for coeffs, const in inequalities:
        normalized = _normalize(coeffs, const)
        if normalized is False:
            return None
        if normalized is not True:
            out.append(normalized)
    return out


def _normalize(coeffs: Coeffs, const: int):
    """Tighten ``coeffs . x + const >= 0``.

    Returns False when contradictory, True when trivial, else the
    gcd-normalized (floored) constraint — Pugh's tightening step.
    """
    live = {n: c for n, c in coeffs.items() if c}
    if not live:
        return const >= 0
    gcd = math.gcd(*(abs(c) for c in live.values()))
    if gcd > 1:
        live = {n: c // gcd for n, c in live.items()}
        const = const // gcd  # floor: sound for integers
    return live, const
