"""The Single Variable Per Constraint test [MHL91, Ban88].

Exact for systems in which every equation mentions at most one variable:
``c0 + c1*z = 0`` has the unique candidate ``z = -c0/c1``, which either is a
non-integer / out-of-range (independent) or pins the variable.  Consistency
of pinned values across equations is checked; any equation with two or more
variables leaves the overall answer at MAYBE (though single-variable
equations may still prove independence).
"""

from __future__ import annotations

from .problem import DependenceProblem, Verdict


def svpc_test(problem: DependenceProblem) -> Verdict:
    if not problem.is_concrete():
        return Verdict.MAYBE
    pinned: dict[str, int] = {}
    exact = True
    for equation in problem.equations:
        names = sorted(equation.variables())
        constant = equation.const.as_int()
        if not names:
            if constant != 0:
                return Verdict.INDEPENDENT
            continue
        if len(names) > 1:
            exact = False
            continue
        (name,) = names
        coeff = equation.coeff(name).as_int()
        if constant % coeff != 0:
            return Verdict.INDEPENDENT
        value = -constant // coeff
        upper = problem.variables[name].upper.as_int()
        if not 0 <= value <= upper:
            return Verdict.INDEPENDENT
        if name in pinned and pinned[name] != value:
            return Verdict.INDEPENDENT
        pinned[name] = value
    if exact:
        return Verdict.DEPENDENT
    return Verdict.MAYBE
