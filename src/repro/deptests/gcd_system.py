"""The generalized GCD test: integer solvability of equation *systems*.

The plain GCD test handles one equation; for the multi-dimensional systems
of equation (2) the classical generalization [Ban88] asks whether the whole
linear diophantine system has *any* integer solution (bounds ignored).  We
decide that exactly by reducing the coefficient matrix to column echelon
form with unimodular column operations (the integer analogue of Gaussian
elimination, equivalent to computing a Hermite normal form):

    A x = b  is integer-solvable  iff  after reducing A to echelon form E
    with A U = E, back-substitution solves E y = b over the integers.

Like the GCD test this proves INDEPENDENT when no integer solution exists
at all; a solvable system still says MAYBE (the solution may violate the
loop bounds).
"""

from __future__ import annotations

from .problem import DependenceProblem, Verdict


def generalized_gcd_test(problem: DependenceProblem) -> Verdict:
    """Exact integer solvability of the equation system, ignoring bounds."""
    if not all(eq.is_integer_concrete() for eq in problem.equations):
        return Verdict.MAYBE
    names = sorted(
        {name for eq in problem.equations for name in eq.variables()}
    )
    if not names:
        if any(eq.const.as_int() != 0 for eq in problem.equations):
            return Verdict.INDEPENDENT
        return Verdict.MAYBE
    matrix = [
        [eq.coeff(name).as_int() for name in names]
        for eq in problem.equations
    ]
    rhs = [-eq.const.as_int() for eq in problem.equations]
    if diophantine_solvable(matrix, rhs):
        return Verdict.MAYBE
    return Verdict.INDEPENDENT


def diophantine_solvable(matrix: list[list[int]], rhs: list[int]) -> bool:
    """Does ``matrix @ x = rhs`` admit an integer solution?

    Works on a copy; empty systems are trivially solvable.
    """
    rows = len(matrix)
    if rows == 0:
        return True
    cols = len(matrix[0]) if matrix[0] else 0
    if cols == 0:
        return all(value == 0 for value in rhs)
    a = [list(row) for row in matrix]
    b = list(rhs)

    pivot_col = 0
    for row in range(rows):
        if pivot_col >= cols:
            # Every column is a pivot: remaining rows are checked as-is by
            # the (then unique) forward substitution.
            break
        col = _reduce_row(a, row, pivot_col, cols)
        if col is None:
            continue  # row is zero from pivot_col on; handled in the solve
        pivot_col = col + 1

    # Forward substitution through the echelonized system: each pivot row
    # forces its pivot value (divisibility check); inconsistent zero rows
    # disprove solvability.
    return _solve_echelon(a, b, rows, cols)


def _reduce_row(
    a: list[list[int]], row: int, start_col: int, cols: int
) -> int | None:
    """Column-reduce ``row`` so at most one non-zero remains from start_col.

    Uses gcd-style column operations (unimodular: they preserve the integer
    column lattice) applied to the *whole* matrix.  Returns the pivot column
    or None when the row is zero from ``start_col`` on.
    """
    while True:
        nonzero = [
            c for c in range(start_col, cols) if a[row][c] != 0
        ]
        if not nonzero:
            return None
        if len(nonzero) == 1:
            pivot = nonzero[0]
            # Move pivot into start_col for a clean echelon shape.
            if pivot != start_col:
                _swap_columns(a, pivot, start_col)
                pivot = start_col
            if a[row][pivot] < 0:
                _negate_column(a, pivot)
            return pivot
        # Combine the two smallest-magnitude columns Euclid-style.
        nonzero.sort(key=lambda c: abs(a[row][c]))
        small, large = nonzero[0], nonzero[1]
        quotient = a[row][large] // a[row][small]
        _add_column_multiple(a, large, small, -quotient)


def _swap_columns(a: list[list[int]], i: int, j: int) -> None:
    for row in a:
        row[i], row[j] = row[j], row[i]


def _negate_column(a: list[list[int]], i: int) -> None:
    for row in a:
        row[i] = -row[i]


def _add_column_multiple(
    a: list[list[int]], target: int, source: int, factor: int
) -> None:
    if factor == 0:
        return
    for row in a:
        row[target] += factor * row[source]


def _solve_echelon(
    a: list[list[int]], b: list[int], rows: int, cols: int
) -> bool:
    """Forward-substitute through the echelonized system."""
    y = [None] * cols  # partial solution in the transformed basis
    for row in range(rows):
        total = b[row]
        unknown_cols = []
        for col in range(cols):
            if a[row][col] == 0:
                continue
            if y[col] is not None:
                total -= a[row][col] * y[col]
            else:
                unknown_cols.append(col)
        if not unknown_cols:
            if total != 0:
                return False
            continue
        # After reduction each row introduces at most one new pivot; any
        # further unknowns are free (choose 0).
        pivot = unknown_cols[0]
        for free in unknown_cols[1:]:
            y[free] = 0
        if total % a[row][pivot] != 0:
            return False
        y[pivot] = total // a[row][pivot]
    return True
