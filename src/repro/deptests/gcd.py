"""The GCD test [AK87, Ban88].

A linear equation ``c0 + sum(ck * zk) = 0`` has integer solutions (ignoring
bounds) iff ``gcd(c1..cn)`` divides ``c0``.  The test proves independence
when the divisibility fails; it never proves dependence (bounds are ignored).

The test applies to concrete (integer) problems; symbolic coefficients make
divisibility undecidable without value knowledge, so such problems answer
MAYBE (the delinearization core handles symbolic cases soundly instead).
"""

from __future__ import annotations

import math

from ..symbolic import LinExpr
from .problem import DependenceProblem, Verdict


def gcd_test(problem: DependenceProblem) -> Verdict:
    """Run the GCD test on every equation; any failure proves independence."""
    for equation in problem.equations:
        if equation_gcd_verdict(equation) is Verdict.INDEPENDENT:
            return Verdict.INDEPENDENT
    return Verdict.MAYBE


def equation_gcd_verdict(equation: LinExpr) -> Verdict:
    """GCD verdict for one equation (MAYBE when symbolic or divisible)."""
    if not equation.is_integer_concrete():
        return Verdict.MAYBE
    coefficients = [coeff.as_int() for coeff in equation.coeffs.values()]
    constant = equation.const.as_int()
    if not coefficients:
        return Verdict.INDEPENDENT if constant != 0 else Verdict.MAYBE
    divisor = math.gcd(*(abs(c) for c in coefficients))
    if constant % divisor != 0:
        return Verdict.INDEPENDENT
    return Verdict.MAYBE
