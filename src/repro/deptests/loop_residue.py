"""Loop residue tests: the Simple Loop Residue test [MHL91] and a
Shostak-style two-variable closure [Sho81, BC86].

**Simple Loop Residue.**  When every equation has the difference form
``z_i - z_j + c = 0`` (coefficients +1/-1, or a single ±1 variable), the
whole problem is a system of difference constraints.  Such systems are
feasible over the *integers* iff the constraint graph has no negative-weight
cycle, so the test is exact when it applies: shortest-path (Bellman-Ford)
negative-cycle detection gives INDEPENDENT/DEPENDENT.  Any equation outside
the difference form makes the test inapplicable (MAYBE) — which is why it
cannot handle the paper's intro equation (1) with its mixed 1/10
coefficients.

**Shostak loop residues.**  Constraints of the form ``a*x + b*y <= c`` with
arbitrary integer coefficients are closed under elimination of a shared
variable with opposite signs.  Saturating the closure and looking for a
contradictory residue ``0 <= c`` with ``c < 0`` decides *real* feasibility
for two-variables-per-constraint systems; like Banerjee it therefore cannot
disprove integer-only infeasibilities.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations

from ..core.chaos import chaos_point
from ..core.resilience import Budget
from .problem import DependenceProblem, Verdict

_ZERO = "__zero__"


def simple_loop_residue_test(
    problem: DependenceProblem, budget: Budget | None = None
) -> Verdict:
    """Difference-constraint feasibility via negative-cycle detection."""
    chaos_point("deptest.residue")
    if not problem.is_concrete():
        return Verdict.MAYBE
    # Edge u -> v with weight w encodes  v - u <= w.
    edges: list[tuple[str, str, int]] = []
    for eq in problem.equations:
        coeffs = {n: c.as_int() for n, c in eq.coeffs.items()}
        constant = eq.const.as_int()
        if not coeffs:
            if constant != 0:
                return Verdict.INDEPENDENT
            continue
        values = sorted(coeffs.values())
        names = list(coeffs)
        if len(coeffs) == 1 and abs(values[0]) == 1:
            # z = -c/coeff: encode as two difference constraints vs zero.
            (name,) = names
            value = -constant * values[0]
            edges.append((_ZERO, name, value))
            edges.append((name, _ZERO, -value))
        elif len(coeffs) == 2 and values == [-1, 1]:
            pos = next(n for n in names if coeffs[n] == 1)
            neg = next(n for n in names if coeffs[n] == -1)
            # pos - neg + c = 0  =>  pos - neg <= -c and neg - pos <= c.
            edges.append((neg, pos, -constant))
            edges.append((pos, neg, constant))
        else:
            return Verdict.MAYBE
    for name, var in problem.variables.items():
        upper = var.upper.as_int()
        if upper < 0:
            return Verdict.INDEPENDENT
        edges.append((_ZERO, name, upper))  # name - 0 <= upper
        edges.append((name, _ZERO, 0))  # 0 - name <= 0
    nodes = {_ZERO, *problem.variables}
    distance = {node: 0 for node in nodes}
    for _ in range(len(nodes)):
        if budget is not None and not budget.spend(len(edges)):
            return Verdict.MAYBE
        updated = False
        for u, v, w in edges:
            if distance[u] + w < distance[v]:
                distance[v] = distance[u] + w
                updated = True
        if not updated:
            return Verdict.DEPENDENT  # no negative cycle: integer-feasible
    return Verdict.INDEPENDENT  # still relaxing after |V| rounds


_MAX_DERIVED = 2000


def shostak_test(
    problem: DependenceProblem, budget: Budget | None = None
) -> Verdict:
    """Real feasibility for <=2-variable constraints via residue closure.

    The saturation loop is metered on ``budget`` (default: a fresh budget
    of ``_MAX_DERIVED`` steps, one per derived residue); exhaustion answers
    MAYBE, exactly as running into the old hard cap did.
    """
    chaos_point("deptest.shostak")
    if not problem.is_concrete():
        return Verdict.MAYBE
    if budget is None:
        budget = Budget(steps=_MAX_DERIVED, label="shostak saturation")
    # Constraints: ({var: coeff}, c) meaning sum <= c.
    constraints: set[tuple[tuple[tuple[str, Fraction], ...], Fraction]] = set()

    def add(coeffs: dict[str, Fraction], bound: Fraction) -> bool:
        """Add a normalized constraint; False signals a contradiction."""
        live = {n: c for n, c in coeffs.items() if c}
        if not live:
            return bound >= 0
        scale = abs(next(iter(sorted(live.values(), key=abs, reverse=True))))
        normalized = tuple(sorted((n, c / scale) for n, c in live.items()))
        constraints.add((normalized, bound / scale))
        return True

    for eq in problem.equations:
        coeffs = {n: Fraction(c.as_int()) for n, c in eq.coeffs.items()}
        constant = Fraction(eq.const.as_int())
        if len(coeffs) > 2:
            return Verdict.MAYBE
        if not add(dict(coeffs), -constant):
            return Verdict.INDEPENDENT
        if not add({n: -c for n, c in coeffs.items()}, constant):
            return Verdict.INDEPENDENT
    for name, var in problem.variables.items():
        upper = Fraction(var.upper.as_int())
        if not add({name: Fraction(1)}, upper):
            return Verdict.INDEPENDENT
        if not add({name: Fraction(-1)}, Fraction(0)):
            return Verdict.INDEPENDENT

    # Saturate: eliminate a shared variable between constraint pairs.
    changed = True
    while changed:
        if not budget.spend():
            return Verdict.MAYBE
        changed = False
        for first, second in combinations(list(constraints), 2):
            derived = _combine(first, second)
            if derived is None:
                continue
            coeffs, bound = derived
            if not coeffs:
                if bound < 0:
                    return Verdict.INDEPENDENT
                continue
            before = len(constraints)
            if not add(dict(coeffs), bound):
                return Verdict.INDEPENDENT
            if len(constraints) != before:
                changed = True
                if not budget.spend():
                    return Verdict.MAYBE
    return Verdict.MAYBE


def _combine(
    first: tuple[tuple[tuple[str, Fraction], ...], Fraction],
    second: tuple[tuple[tuple[str, Fraction], ...], Fraction],
) -> tuple[tuple[tuple[str, Fraction], ...], Fraction] | None:
    """Eliminate one variable shared with opposite signs, if any."""
    coeffs1, bound1 = first
    coeffs2, bound2 = second
    map1, map2 = dict(coeffs1), dict(coeffs2)
    shared = [
        name
        for name in map1
        if name in map2 and (map1[name] > 0) != (map2[name] > 0)
    ]
    if not shared:
        return None
    name = shared[0]
    scale1 = abs(map2[name])
    scale2 = abs(map1[name])
    merged: dict[str, Fraction] = {}
    for n, c in map1.items():
        merged[n] = merged.get(n, Fraction(0)) + c * scale1
    for n, c in map2.items():
        merged[n] = merged.get(n, Fraction(0)) + c * scale2
    merged = {n: c for n, c in merged.items() if c}
    if len(merged) > 2:
        return None
    return tuple(sorted(merged.items())), bound1 * scale1 + bound2 * scale2
