"""Regenerating the paper's Figure 1: the linearized-reference census.

The RiCEPS suite itself is unavailable, so deterministic synthetic programs
with the profiled characteristics are generated (planting linearized nests
in the styles the paper describes) and the census pipeline measures the
counts — see DESIGN.md for why this substitution preserves the result.

Run:  python examples/riceps_census.py
"""

from repro.corpus import (
    RICEPS_PROFILES,
    census_source,
    generate_program,
    generate_riceps_program,
)

SCALE = 0.1


def main() -> None:
    print("Figure 1: loop nests containing linearized references")
    print(
        f"{'Program':10s} {'Type':24s} {'Lines':>7s} "
        f"{'Paper':>6s} {'Measured':>9s} {'Styles used'}"
    )
    for profile in RICEPS_PROFILES:
        generated = generate_riceps_program(profile, scale=SCALE)
        result = census_source(generated.source, profile.name)
        styles = ",".join(sorted(set(generated.styles_used))) or "-"
        print(
            f"{profile.name:10s} {profile.program_type:24s} "
            f"{profile.lines:7d} {profile.reported:>6s} "
            f"{result.linearized_nests:9d} {styles}"
        )
    print()

    print("A custom program, one nest per linearization style:")
    for style in ("hand", "runtime", "induction", "equivalence", "common"):
        generated = generate_program(
            "DEMO", lines=1, linearized_nests=1, seed=42, styles=(style,)
        )
        result = census_source(generated.source)
        print(f"  style {style:12s}: measured {result.linearized_nests} nest")
        if style == "hand":
            print("    generated source:")
            for line in generated.source.splitlines():
                print(f"      {line}")


if __name__ == "__main__":
    main()
