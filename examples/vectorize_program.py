"""Vectorizing the paper's Figure-3 program.

Builds the full dependence graph (reproducing the paper's dependence table)
and runs Allen-Kennedy loop distribution + vectorization over it.

Run:  python examples/vectorize_program.py
"""

from repro import analyze_dependences, emit_program, parse_fortran, vectorize

FIGURE3 = """
REAL X(200), Y(200), B(100)
REAL A(100,100), C(100,100)
DO 30 i = 1, 100
X(i) = Y(i) + 10
DO 20 j = 1, 99
B(j) = A(j,20)
DO 10 k = 1, 100
A(j+1,k) = B(j) + C(j,k)
10 CONTINUE
Y(i+j) = A(j+1,20)
20 CONTINUE
30 CONTINUE
"""


def main() -> None:
    program = parse_fortran(FIGURE3)
    graph = analyze_dependences(program)

    print("Dependence table (paper Figure 3):")
    print(graph.format_table())
    print()

    print("Dependences carried by each loop level:")
    for level in (1, 2, 3):
        carried = graph.carried_by_level(level)
        print(f"  level {level}: {len(carried)} edge(s)")
    print(f"  loop-independent: {len(graph.loop_independent())} edge(s)")
    print()

    plan = vectorize(graph)
    print("Vectorization plan:")
    for entry in plan.plan:
        loops = ", ".join(loop.var for loop in entry.loops)
        print(
            f"  {entry.stmt.label}: loops=({loops}) "
            f"serial={entry.serial_levels} vector={entry.vector_levels}"
        )
    print()

    print("Transformed program:")
    print(emit_program(plan))


if __name__ == "__main__":
    main()
