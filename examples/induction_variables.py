"""Multi-loop induction variables: the paper's BOAST fragment.

IB is controlled by all three loops; recognizing that and substituting the
closed form K + J*KK + I*KK*JJ produces a linearized reference that
delinearization can analyze — parallelizing the B assignment with respect
to all three loops (existing techniques saw only the innermost).

Run:  python examples/induction_variables.py
"""

from repro import (
    analyze_dependences,
    emit_program,
    format_program,
    normalize_program,
    parse_fortran,
    substitute_induction_variables,
    vectorize,
)
from repro.analysis import find_induction_variables

BOAST = """
IB = -1
DO 1 I = 0, II-1
DO 1 J = 0, JJ-1
DO 1 K = 0, KK-1
IB = IB + 1
C(J) = C(J) + 1
1 B(IB) = B(IB) + Q
"""

CONCRETE = BOAST.replace("II", "6").replace("JJ", "4").replace("KK", "3")


def main() -> None:
    print("Input program (derived from a BOAST loop nest):")
    print(BOAST)

    normalized = normalize_program(parse_fortran(BOAST))
    ivs = find_induction_variables(normalized)
    for iv in ivs:
        controlling = ", ".join(loop.var for loop in iv.loops)
        print(
            f"Recognized induction variable {iv.name}: init={iv.init}, "
            f"step={iv.step}, controlled by {iv.depth} loops ({controlling})"
        )
    print()

    rewritten = substitute_induction_variables(normalized)
    print("After closed-form substitution:")
    print(format_program(rewritten))

    # Vectorize the concrete-size variant (symbolic trip counts stay
    # analyzable too, but the concrete one shows the full payoff).
    program = substitute_induction_variables(
        normalize_program(parse_fortran(CONCRETE))
    )
    graph = analyze_dependences(program, normalized=True)
    plan = vectorize(graph)
    print("Parallelized program (B parallel in all 3 loops, C a reduction):")
    print(emit_program(plan))


if __name__ == "__main__":
    main()
