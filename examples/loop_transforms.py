"""Loop transformations driven by direction vectors.

Dependence direction vectors license more than vectorization: this example
checks per-level parallelism (DOALL detection) and loop-interchange
legality for several nests, including the classic (<, >) interchange
blocker.

Run:  python examples/loop_transforms.py
"""

from repro import analyze_dependences, format_program, parse_fortran
from repro.vectorizer import interchange, interchange_legal, parallel_levels

NESTS = {
    "independent rows": """
        REAL A(100,100)
        DO 1 i = 1, 9
        DO 1 j = 1, 10
        1 A(i+1, j) = A(i, j)
    """,
    "wavefront (<, >)": """
        REAL A(100,100)
        DO 1 i = 1, 9
        DO 1 j = 2, 10
        1 A(i+1, j-1) = A(i, j)
    """,
    "diagonal (<, <)": """
        REAL A(100,100)
        DO 1 i = 1, 9
        DO 1 j = 1, 9
        1 A(i+1, j+1) = A(i, j)
    """,
}


def main() -> None:
    for label, source in NESTS.items():
        program = parse_fortran(source)
        graph = analyze_dependences(program)
        levels = parallel_levels(graph)
        legal = interchange_legal(graph, 1, 2)
        print(f"=== {label} ===")
        for edge in graph.edges:
            print(f"  dependence: {edge}")
        nest_var = next(iter(levels))
        print(f"  parallel levels: {sorted(levels[nest_var]) or 'none'}")
        print(f"  interchange (i <-> j) legal: {legal}")
        if legal:
            swapped = interchange(graph.program, nest_var)
            print("  interchanged program:")
            for line in format_program(swapped).splitlines():
                print(f"    {line}")
        print()


if __name__ == "__main__":
    main()
