! A forward shift by 5 inside a single loop: a genuine dependence with
! constant distance 5 (direction < at level 1).
      REAL A(0:99)
      DO 1 i = 0, 94
1     A(i + 5) = A(i) + 1
