! The paper equation (1) program (Section 1): a linearized 2-d access
! pattern.  Delinearization separates i and j and proves the references
! independent, where the GCD test and Banerjee inequalities both fail.
      REAL C(0:99)
      DO 1 i = 0, 4
      DO 1 j = 0, 9
1     C(i + 10*j) = C(i + 10*j + 5)
