! Parameter association aliasing: both array actuals name A, so inside
! UPD the formals X and Y are the same storage.  The interprocedural
! summary translates the callee's accesses back to A — the write X(J)
! and the read Y(J+1) become a distance-1 anti dependence on A — and
! the provable alias is reported as AL001.
      REAL A(0:99)
      DO 1 I = 0, 98
      CALL UPD(A, A, I)
1     CONTINUE
      END
      SUBROUTINE UPD(X, Y, J)
      REAL X(0:99), Y(0:99)
      INTEGER J
      X(J) = Y(J+1) * 2
      END
