"""Symbolic delinearization: the paper's Section-4 example.

The reference A(N*N*k + N*j + i) has symbolic strides 1, N, N**2.  Under
the predicate N >= 2 (derived from the array bound N**3 - 1), the algorithm
separates the equation into three dimension equations symbolically —
recovering A(i,j,k) = A(j, i+1, k+1) — with exact distance -1 in the k
dimension.

Run:  python examples/symbolic_parameters.py
"""

from repro import Assumptions, BoundedVar, DependenceProblem, LinExpr, Poly, delinearize

SOURCE = """
REAL A(0:N*N*N-1)
DO 1 i = 0, N-2
DO 1 j = 0, N-1
DO 1 k = 0, N-2
1 A(N*N*k+N*j+i) = A(N*N*k+j+N*i+N*N+N)
"""


def build_problem(lower_bound: int) -> DependenceProblem:
    n = Poly.symbol("N")
    equation = LinExpr(
        {
            "k1": n * n,
            "j1": n,
            "i1": 1,
            "k2": -(n * n),
            "j2": -1,
            "i2": -n,
        },
        -(n * n) - n,
    )
    variables = [
        BoundedVar.make("i1", n - 2, 1, 0),
        BoundedVar.make("i2", n - 2, 1, 1),
        BoundedVar.make("j1", n - 1, 2, 0),
        BoundedVar.make("j2", n - 1, 2, 1),
        BoundedVar.make("k1", n - 2, 3, 0),
        BoundedVar.make("k2", n - 2, 3, 1),
    ]
    return DependenceProblem(
        [equation],
        variables,
        common_levels=3,
        assumptions=Assumptions({"N": lower_bound}),
    )


def main() -> None:
    print("Input program:")
    print(SOURCE)

    for lower in (1, 2, 3):
        problem = build_problem(lower)
        result = delinearize(problem, keep_trace=True)
        print(f"--- assuming N >= {lower} ---")
        print("verdict:", result.verdict)
        print("dimensions separated:", result.dimensions_found)
        for group in result.groups:
            print(f"  {group.equation} = 0   [{group.method}: {group.verdict}]")
        if not result.independent:
            print(
                "distance-direction vector:",
                result.distance_direction_vector(3),
            )
        print("trace:")
        print(result.format_trace())
        print()

    print(
        "The three separated dimensions correspond to the delinearized\n"
        "program  A(i,j,k) = A(j, i+1, k+1)  over REAL A(0:N-1,0:N-1,0:N-1)."
    )


if __name__ == "__main__":
    main()
