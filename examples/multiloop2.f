! Control flow inside a loop nest, after the HELIX multiloop2 test shape:
! guarded accumulator updates in the two IF arms, plus a guarded mutation
! of a scalar that feeds a subscript (the "particularly mean" rescale).
! The linter reports the guarded dependence paths (CD001) and flags the
! control-dependent subscript mutation (CD002).
      REAL A(0:99), B(0:99)
      INTEGER K
      K = 0
      DO 1 I = 0, 98
      IF (I < 10) THEN
      A(I) = A(I+1) + 1
      ELSE
      B(K) = B(K) + A(I)
      K = K + 1
      ENDIF
1     CONTINUE
