"""C pointer traversal: pointer -> index -> delinearization.

The paper's C fragment walks array d with two pointers.  The pipeline
converts pointers to integer indices, normalizes the loops (producing the
classic linearized subscript d(i + 10*j)), and delinearization proves the
references independent — so both loops are parallel.

Run:  python examples/c_pointer_analysis.py
"""

from repro import (
    analyze_dependences,
    convert_pointers,
    emit_program,
    format_program,
    normalize_program,
    parse_c,
    vectorize,
)

SOURCE = """
float d[100];
float *i, *j;
for (j = d; j <= d + 90; j += 10)
    for (i = j; i < j + 5; i++)
        *i = *(i + 5);
"""


def main() -> None:
    print("Input C program:")
    print(SOURCE)

    program, info = parse_c(SOURCE)
    print(f"Pointers found: {sorted(info.pointers)}")
    print()

    indexed = convert_pointers(program, info)
    print("After pointer-to-index conversion:")
    print(format_program(indexed))

    normalized = normalize_program(indexed)
    print("After loop normalization (the linearized form):")
    print(format_program(normalized))

    graph = analyze_dependences(normalized, normalized=True)
    print(f"Dependence edges: {len(graph.edges)} (independent!)")
    print()

    plan = vectorize(graph)
    print("Parallelized program:")
    print(emit_program(plan))


if __name__ == "__main__":
    main()
