! The triple nest from the paper Section 5 discussion (MHL91 example):
! a three-dimensional access linearized through A(100*i + 10*j + k).
      REAL A(0:999)
      DO 1 i = 0, 9
      DO 1 j = 0, 9
      DO 1 k = 1, 9
1     A(100*i + 10*j + k) = A(100*i + 10*j + k - 1) + 1
