! DELIBERATELY UNSAFE: an EQUIVALENCE reference crossing its alias's
! extent.  A and B share storage; A's references sweep storage offsets
! [0, 99], crossing B's 50-element extent, so the two views genuinely
! overlap on one half and diverge on the other (DB003, warning).  The
! ANSI rule the paper quotes treats associated arrays as linearized;
! this diagnostic flags the case where the association is also
! partial -- the classic source of silent aliasing bugs.
      REAL A(0:9, 0:9)
      REAL B(0:49)
      EQUIVALENCE (A, B)
      DO 1 i = 0, 9
      DO 1 j = 0, 9
    1 A(i, j) = B(5*i) + 1
