! A first-order recurrence: every iteration reads the element the
! previous iteration wrote, so the loop is a flow dependence carried at
! level 1 and must stay serial.  Run through the verifier-demonstration
! knob
!
!     repro vectorize examples/race_store.f --drop-edge 0
!
! codegen sees an empty dependence graph and emits the (wrong) vector
! statement D(1:5) = D(0:4) + 1; the schedule verifier — which checks
! against the full graph — rejects it with VR001 and exit status 2.
! Without the mutation the program compiles serial and verifies clean.
      REAL D(0:5)
      DO 1 i = 0, 4
1     D(i + 1) = D(i) + 1
