! The classic (<, >) interchange blocker: the flow dependence of
! A(i+1, j-1) = A(i, j) on itself is carried forward at level 1 but
! backward at level 2.  Interchanging the two loops would turn the
! direction vector into (>, <) — lexicographically negative, i.e. the
! dependence would run backwards in the swapped iteration order.
!
!     repro vectorize examples/race_interchange.f --interchange i
!
! re-derives interchange legality from the direction vectors and rejects
! the swap with VR004 and exit status 2.  Without --interchange the
! program vectorizes the inner loop and verifies clean.
      REAL A(0:10, 0:10)
      DO 1 i = 0, 8
      DO 1 j = 1, 9
1     A(i + 1, j - 1) = A(i, j)
