"""FORTRAN EQUIVALENCE aliasing: linearize, then delinearize.

The ANSI standard treats EQUIVALENCE'd arrays as linearized storage; to
compare A(i,j) against B(i,2j+1) when A(0:9,0:9) and B(0:4,0:19) share
memory, the references are first rewritten to a common 1-D storage array
and the resulting linearized dependence equation is then broken by
delinearization — proving the paper's example independent.

Also demonstrates *partial* linearization of the paper's 4-D variant, where
only the differently-shaped leading dimensions need the storage view (the
trailing IFUN(10) subscript would otherwise poison the analysis).

Run:  python examples/equivalence_aliasing.py
"""

from repro import (
    analyze_dependences,
    delinearize,
    format_program,
    linearize_program,
    normalize_program,
    parse_fortran,
    partially_linearize,
    rectangular_bounds,
)
from repro.analysis import build_pair_problem
from repro.ir import collect_refs

TWO_D = """
REAL A(0:9,0:9)
REAL B(0:4,0:19)
EQUIVALENCE (A, B)
DO 1 i = 0, 4
DO 1 j = 0, 9
1 A(i, j) = B(i, 2*j+1)
"""

FOUR_D = """
REAL A(0:9,0:9,0:9,0:9)
DO 1 i = 0, 4
DO 1 j = 0, 9
DO 1 k = 0, 9
DO 1 l = 0, 9
1 A(i, 2*j, k, IFUN(10)) = A(i, j, k, l)
"""


def main() -> None:
    print("Original aliased program:")
    print(TWO_D)

    program = parse_fortran(TWO_D)
    linearized = linearize_program(program)
    print("After storage linearization:")
    print(format_program(linearized))

    normalized = normalize_program(linearized)
    bounds = rectangular_bounds(normalized)
    refs = collect_refs(normalized, "_stor1")
    pair = build_pair_problem(refs[0], refs[1], bounds)
    print("Linearized dependence equation:", pair.problem)
    result = delinearize(pair.problem, keep_trace=True)
    print("Delinearization:", result.verdict)
    print(result.format_trace())
    print()

    graph = analyze_dependences(linearized)
    print(f"Dependence edges after delinearization: {len(graph.edges)}")
    print()

    print("Partial linearization of the 4-D example (2 of 4 dimensions):")
    partial = partially_linearize(parse_fortran(FOUR_D), "A", 2)
    print(format_program(partial))
    graph4 = analyze_dependences(partial)
    print("Dependences of the 4-D program:")
    print(graph4.format_table())


if __name__ == "__main__":
    main()
