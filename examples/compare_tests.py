"""Comparing every dependence test on the paper's equations.

Runs the full test battery — the eight classical techniques from the
paper's comparison, the post-paper exact Omega test, delinearization, and
the exhaustive ground truth — over a small gallery of dependence problems,
printing a verdict matrix.

Run:  python examples/compare_tests.py
"""

from repro import DependenceProblem, Verdict, delinearize
from repro.deptests import exhaustive_test, run_all

GALLERY = {
    "eq (1): C(i+10j) vs C(i+10j+5)": DependenceProblem.single(
        {"i1": 1, "j1": 10, "i2": -1, "j2": -10},
        -5,
        {"i1": 4, "i2": 4, "j1": 9, "j2": 9},
        pairs=[("i1", "i2"), ("j1", "j2")],
    ),
    "D(i+1) vs D(i)": DependenceProblem.single(
        {"i1": 1, "i2": -1},
        1,
        {"i1": 8, "i2": 8},
        pairs=[("i1", "i2")],
    ),
    "parity: 2a - 2b = 1": DependenceProblem.single(
        {"a": 2, "b": -2}, -1, {"a": 9, "b": 9}
    ),
    "range: a - b = 5, both in [0,4]": DependenceProblem.single(
        {"a": 1, "b": -1}, -5, {"a": 4, "b": 4}
    ),
    "MHL91: A(10i+j) vs A(10(i+2)+j)": DependenceProblem.single(
        {"i1": 10, "j1": 1, "i2": -10, "j2": -1},
        -20,
        {"i1": 7, "i2": 7, "j1": 9, "j2": 9},
        pairs=[("i1", "i2"), ("j1", "j2")],
    ),
}

SHORT = {
    Verdict.INDEPENDENT: "indep",
    Verdict.DEPENDENT: "dep",
    Verdict.MAYBE: "maybe",
}


def main() -> None:
    names = None
    table = {}
    for label, problem in GALLERY.items():
        results = run_all(problem, include_extended=True)
        results["Delinearization"] = delinearize(problem).verdict
        results["Exhaustive"] = exhaustive_test(problem)
        table[label] = results
        names = list(results)

    width = max(len(n) for n in names) + 2
    header = " " * width + " | ".join(
        f"{i + 1}" for i in range(len(GALLERY))
    )
    print("Problems:")
    for index, label in enumerate(GALLERY, start=1):
        print(f"  {index}. {label}")
    print()
    print(header)
    for name in names:
        row = " | ".join(
            f"{SHORT[table[label][name]]:>5s}" for label in GALLERY
        )
        print(f"{name:{width}s}{row}")
    print()
    print(
        "Only tightened Fourier-Motzkin, Omega, and delinearization "
        "disprove equation (1); delinearization alone also proves the "
        "dependent cases exactly with their distances."
    )


if __name__ == "__main__":
    main()
