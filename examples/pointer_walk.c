/* The paper's C pointer-traversal example (Section 6): a pointer walked
 * in steps of 10 over a 100-element array, with a dereference offset of 5.
 * Pointer conversion rewrites the loop to an integer index, after which
 * delinearization applies as usual. */
float d[100];
float *j;
for (j = d; j <= d + 90; j += 10)
    *j = *(j + 5);
