! DELIBERATELY UNSAFE: out-of-bounds linearized subscripts.
!
! The interval pass proves M = 100 at every read of M, so the written
! subscript i + 10*j + M ranges over [100, 199] -- entirely outside
! the declared bounds 0:99 (DB001, error).  In the second nest the
! subscript i + 10*j stays linearized but i spans 15 values against a
! recovered dimension extent of 10/1 = 10, so distinct (i, j) pairs
! collide in storage (DB004, warning) and the subscript range [0, 64]
! is fine while the dimension structure is not.
      REAL C(0:99)
      M = 100
      DO 1 i = 0, 9
      DO 1 j = 0, 9
    1 C(i + 10*j + M) = C(i + 10*j)
      DO 2 i = 0, 14
      DO 2 j = 0, 5
    2 C(i + 10*j) = C(i + 10*j) + 1
