"""Quickstart: the paper's motivating example, end to end.

Are the references C(i+10*j) and C(i+10*j+5), 0 <= i <= 4, 0 <= j <= 9,
independent?  Classical tests say "maybe"; delinearization says "yes" —
and the vectorizer then runs both loops in parallel.

Run:  python examples/quickstart.py
"""

from repro import (
    DependenceProblem,
    analyze_dependences,
    delinearize,
    emit_program,
    parse_fortran,
    vectorize,
)
from repro.deptests import run_all

SOURCE = """
REAL C(0:99)
DO 1 i = 0, 4
DO 1 j = 0, 9
1 C(i+10*j) = C(i+10*j+5)
"""


def main() -> None:
    print("Input program:")
    print(SOURCE)

    # --- 1. The dependence equation, by hand -----------------------------
    problem = DependenceProblem.single(
        {"i1": 1, "j1": 10, "i2": -1, "j2": -10},
        -5,
        {"i1": 4, "i2": 4, "j1": 9, "j2": 9},
        pairs=[("i1", "i2"), ("j1", "j2")],
    )
    print("Dependence equation:", problem)
    print()

    print("What the classical tests say:")
    for name, verdict in run_all(problem, include_exhaustive=True).items():
        print(f"  {name:32s} -> {verdict}")
    print()

    result = delinearize(problem, keep_trace=True)
    print("Delinearization verdict:", result.verdict)
    print("Algorithm trace:")
    print(result.format_trace())
    print()

    # --- 2. The same, from source text ------------------------------------
    program = parse_fortran(SOURCE)
    graph = analyze_dependences(program)
    print(f"Whole-program analysis: {len(graph.edges)} dependence edges")
    print()

    plan = vectorize(graph)
    print("Vectorized program (both loops parallel):")
    print(emit_program(plan))


if __name__ == "__main__":
    main()
